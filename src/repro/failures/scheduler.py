"""A Bistro/PBS-like fleet scheduler simulation (paper section 2.2).

"Training jobs are submitted to this infrastructure through an
internally developed job scheduling interface. Schedulers like Bistro
and PBS handle job and user priorities, and manage the job queue."

This module simulates a fleet of training clusters running a queue of
long jobs under a failure process, with checkpoint-interval-driven
recovery: when a job fails, the work since its last checkpoint is lost
and the job re-queues with the rest of its progress intact. It operates
at job granularity (no per-batch training) so fleet-month experiments —
Fig 3 traces, wasted-work versus checkpoint-interval sweeps — run in
milliseconds.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError
from .models import FailureModel


@dataclass(order=True)
class Job:
    """One queued training job (priority: lower number runs first)."""

    priority: int
    job_id: str = field(compare=False)
    required_hours: float = field(compare=False)
    completed_hours: float = field(default=0.0, compare=False)
    failures: int = field(default=0, compare=False)
    wasted_hours: float = field(default=0.0, compare=False)
    submitted_at_h: float = field(default=0.0, compare=False)
    finished_at_h: float | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.required_hours <= 0:
            raise SimulationError("job must require positive hours")

    @property
    def remaining_hours(self) -> float:
        return max(0.0, self.required_hours - self.completed_hours)


@dataclass(frozen=True)
class FleetReport:
    """Aggregate outcome of a fleet simulation."""

    jobs_completed: int
    total_failures: int
    total_wasted_hours: float
    total_useful_hours: float
    makespan_hours: float
    failure_runtimes_h: tuple[float, ...]  # per-failure job runtime (Fig 3)

    @property
    def waste_fraction(self) -> float:
        total = self.total_wasted_hours + self.total_useful_hours
        return self.total_wasted_hours / total if total else 0.0


class FleetScheduler:
    """Runs a job queue over ``num_clusters`` failure-prone clusters.

    ``checkpoint_interval_hours`` bounds the work lost per failure: a
    job that fails re-queues having lost only the progress since its
    last checkpoint boundary (plus nothing else — restore time is
    negligible at this granularity).
    """

    def __init__(
        self,
        num_clusters: int,
        failure_model: FailureModel,
        checkpoint_interval_hours: float = 0.5,
        seed: int = 0,
    ) -> None:
        if num_clusters < 1:
            raise SimulationError("need at least one cluster")
        if checkpoint_interval_hours <= 0:
            raise SimulationError("checkpoint interval must be positive")
        self.num_clusters = num_clusters
        self.failure_model = failure_model
        self.checkpoint_interval_hours = checkpoint_interval_hours
        self.rng = np.random.default_rng(seed)

    def run(self, jobs: list[Job]) -> FleetReport:
        """Simulate until every job completes."""
        if not jobs:
            raise SimulationError("need at least one job")
        queue = list(jobs)
        heapq.heapify(queue)
        # (free_at_hours, cluster_id) min-heap of cluster availability.
        clusters = [(0.0, c) for c in range(self.num_clusters)]
        heapq.heapify(clusters)

        completed: list[Job] = []
        failure_runtimes: list[float] = []
        total_failures = 0
        total_wasted = 0.0
        makespan = 0.0

        while queue:
            job = heapq.heappop(queue)
            free_at, cluster_id = heapq.heappop(clusters)
            start = max(free_at, job.submitted_at_h)
            time_to_failure_h = (
                float(self.failure_model.sample(self.rng)) / 3600.0
            )
            if time_to_failure_h >= job.remaining_hours:
                # Runs to completion this attempt.
                end = start + job.remaining_hours
                job.completed_hours = job.required_hours
                job.finished_at_h = end
                completed.append(job)
            else:
                # Fails mid-run; loses progress since the last interval.
                end = start + time_to_failure_h
                progress = job.completed_hours + time_to_failure_h
                checkpointed = (
                    progress
                    // self.checkpoint_interval_hours
                    * self.checkpoint_interval_hours
                )
                wasted = progress - checkpointed
                job.completed_hours = checkpointed
                job.failures += 1
                job.wasted_hours += wasted
                total_wasted += wasted
                total_failures += 1
                failure_runtimes.append(time_to_failure_h)
                heapq.heappush(queue, job)
            heapq.heappush(clusters, (end, cluster_id))
            makespan = max(makespan, end)

        useful = sum(j.required_hours for j in completed)
        return FleetReport(
            jobs_completed=len(completed),
            total_failures=total_failures,
            total_wasted_hours=total_wasted,
            total_useful_hours=useful,
            makespan_hours=makespan,
            failure_runtimes_h=tuple(failure_runtimes),
        )


def make_job_batch(
    count: int,
    mean_required_hours: float = 72.0,
    seed: int = 0,
) -> list[Job]:
    """A batch of jobs with log-normally spread durations."""
    if count < 1:
        raise SimulationError("need at least one job")
    rng = np.random.default_rng(seed)
    durations = rng.lognormal(
        np.log(mean_required_hours), 0.5, size=count
    )
    return [
        Job(
            priority=int(rng.integers(0, 3)),
            job_id=f"job-{i:05d}",
            required_hours=float(max(1.0, d)),
        )
        for i, d in enumerate(durations)
    ]
