"""Failure injection into live training runs.

Drives a :class:`~repro.core.controller.CheckNRun` job batch by batch,
crashing it whenever the simulated clock crosses the next sampled
failure time. A crash discards the live state (as a real process death
would), restores from the newest valid checkpoint — or reinitialises
from scratch if none exists — and continues. The report quantifies the
wasted (re-trained) work, which is exactly what checkpoint frequency
trades against (paper section 1, criterion 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.controller import CheckNRun
from ..data.state import ReaderState
from ..errors import CheckpointNotFoundError, SimulationError
from .models import FailureModel


@dataclass
class FailureEvent:
    """One injected crash and its recovery."""

    at_time_s: float
    interval_index: int
    restored_from: str | None  # checkpoint id, or None for scratch
    wasted_batches: int


@dataclass
class FailureRunReport:
    """Outcome of a failure-injected training run."""

    target_intervals: int
    completed_intervals: int
    failures: int
    total_batches_trained: int  # includes re-trained work
    effective_batches: int  # unique dataset progress
    wasted_batches: int
    total_time_s: float
    events: list[FailureEvent] = field(default_factory=list)

    @property
    def goodput(self) -> float:
        """Fraction of trained batches that were not wasted."""
        if self.total_batches_trained == 0:
            return 1.0
        return self.effective_batches / self.total_batches_trained


class FailureInjector:
    """Runs a controller-managed job under a failure process."""

    def __init__(
        self,
        controller: CheckNRun,
        failure_model: FailureModel,
        seed: int = 0,
        max_failures: int = 1000,
    ) -> None:
        if max_failures < 0:
            raise SimulationError("max_failures must be >= 0")
        self.controller = controller
        self.failure_model = failure_model
        self.rng = np.random.default_rng(seed)
        self.max_failures = max_failures

    def _crash_and_recover(self) -> FailureEvent:
        """Simulate a crash: live state is lost; recover or restart."""
        controller = self.controller
        before = controller.trainer.model.batches_trained
        try:
            report = controller.restore_latest()
            restored_from = report.checkpoint_id
            after = controller.trainer.model.batches_trained
        except CheckpointNotFoundError:
            controller.trainer.model.reinitialize()
            controller.reader.restore(
                ReaderState(
                    next_batch_index=0, in_flight=0, batches_delivered=0
                )
            )
            controller.tracker_set.reset_all()
            controller.interval_index = 0
            restored_from = None
            after = 0
        return FailureEvent(
            at_time_s=controller.clock.now,
            interval_index=controller.interval_index,
            restored_from=restored_from,
            wasted_batches=max(0, before - after),
        )

    def run(self, target_intervals: int) -> FailureRunReport:
        """Train until ``target_intervals`` checkpoint intervals complete."""
        if target_intervals < 1:
            raise SimulationError("need at least one target interval")
        controller = self.controller
        clock = controller.clock
        batches = controller.config.interval_batches

        next_failure = clock.now + float(
            self.failure_model.sample(self.rng)
        )
        total_trained = 0
        events: list[FailureEvent] = []

        while controller.interval_index < target_intervals:
            controller.coordinator.grant_interval(batches)
            crashed = False
            for _ in range(batches):
                controller.trainer.train_one_batch()
                total_trained += 1
                if (
                    clock.now >= next_failure
                    and len(events) < self.max_failures
                ):
                    events.append(self._crash_and_recover())
                    next_failure = clock.now + float(
                        self.failure_model.sample(self.rng)
                    )
                    crashed = True
                    break
            if not crashed:
                controller.checkpoint()

        effective = controller.trainer.model.batches_trained
        return FailureRunReport(
            target_intervals=target_intervals,
            completed_intervals=controller.interval_index,
            failures=len(events),
            total_batches_trained=total_trained,
            effective_batches=effective,
            wasted_batches=sum(e.wasted_batches for e in events),
            total_time_s=clock.now,
            events=events,
        )
