"""Failure models, traces, injection, correlated domains, job queue.

Independent per-job failures come from the Fig 3 models in
:mod:`.models`/:mod:`.traces` and are injected by :mod:`.injector`;
correlated rack/power failures (the restore-storm trigger) are planned
by :mod:`.domains`; :mod:`.scheduler` simulates fleet *occupancy* at
whole-job granularity.
"""

from .domains import (
    DOMAIN_POWER,
    DOMAIN_RACK,
    FailureDomain,
    StormPlan,
    assign_domains,
    plan_storm,
)
from .injector import FailureEvent, FailureInjector, FailureRunReport
from .models import (
    HOUR_S,
    ExponentialFailures,
    FailureModel,
    LogNormalFailures,
    MixtureFailures,
    ScheduledFailures,
    WeibullFailures,
    paper_failure_model,
)
from .scheduler import FleetReport, FleetScheduler, Job, make_job_batch
from .traces import CdfPoint, FailureTrace

__all__ = [
    "DOMAIN_POWER",
    "DOMAIN_RACK",
    "HOUR_S",
    "CdfPoint",
    "ExponentialFailures",
    "FailureDomain",
    "FailureEvent",
    "FailureInjector",
    "FailureModel",
    "FailureRunReport",
    "FailureTrace",
    "FleetReport",
    "FleetScheduler",
    "Job",
    "LogNormalFailures",
    "MixtureFailures",
    "ScheduledFailures",
    "StormPlan",
    "WeibullFailures",
    "assign_domains",
    "make_job_batch",
    "paper_failure_model",
    "plan_storm",
]
