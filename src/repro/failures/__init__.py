"""Failure models, traces, injection, and the fleet scheduler."""

from .injector import FailureEvent, FailureInjector, FailureRunReport
from .models import (
    HOUR_S,
    ExponentialFailures,
    FailureModel,
    LogNormalFailures,
    MixtureFailures,
    ScheduledFailures,
    WeibullFailures,
    paper_failure_model,
)
from .scheduler import FleetReport, FleetScheduler, Job, make_job_batch
from .traces import CdfPoint, FailureTrace

__all__ = [
    "HOUR_S",
    "CdfPoint",
    "ExponentialFailures",
    "FailureEvent",
    "FailureInjector",
    "FailureModel",
    "FailureRunReport",
    "FailureTrace",
    "FleetReport",
    "FleetScheduler",
    "Job",
    "LogNormalFailures",
    "MixtureFailures",
    "ScheduledFailures",
    "WeibullFailures",
    "make_job_batch",
    "paper_failure_model",
]
