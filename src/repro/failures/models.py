"""Failure-time models for the training fleet (paper section 3.1).

The paper's Fig 3 is a CDF of job time-to-failure across 21 clusters
over one month, with two published quantiles: the longest 10% of failed
jobs ran >= 13.5 hours, the top 1% >= 53.9 hours. A Weibull distribution
fits two quantiles exactly and its shape parameter < 1 captures the
heavy tail production fleets exhibit (many early failures, a long tail
of late ones).

Models sample *time to failure* in seconds; the trace machinery filters
sub-5-minute failures as the paper does ("usually simple user setup
errors").
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from ..errors import SimulationError

HOUR_S = 3600.0


class FailureModel(ABC):
    """Distribution over time-to-failure (seconds)."""

    name: str = "abstract"

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one failure time in seconds."""

    @abstractmethod
    def mean_s(self) -> float:
        """Expected time to failure in seconds."""

    def sample_many(
        self, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``count`` failure times (vectorised where possible)."""
        if count < 0:
            raise SimulationError(f"negative sample count {count}")
        return np.array([self.sample(rng) for _ in range(count)])

    def failure_rate_per_hour(self) -> float:
        """1 / MTTF, in failures per hour (bit-width selection input)."""
        return HOUR_S / self.mean_s()


class ExponentialFailures(FailureModel):
    """Memoryless failures — the simplest fleet model."""

    name = "exponential"

    def __init__(self, mean_time_to_failure_s: float) -> None:
        if mean_time_to_failure_s <= 0:
            raise SimulationError("MTTF must be positive")
        self.mttf_s = mean_time_to_failure_s

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mttf_s))

    def sample_many(self, count, rng):
        if count < 0:
            raise SimulationError(f"negative sample count {count}")
        return rng.exponential(self.mttf_s, size=count)

    def mean_s(self) -> float:
        return self.mttf_s


class WeibullFailures(FailureModel):
    """Weibull time-to-failure; shape < 1 gives the heavy tail of Fig 3."""

    name = "weibull"

    def __init__(self, shape: float, scale_s: float) -> None:
        if shape <= 0 or scale_s <= 0:
            raise SimulationError("Weibull shape and scale must be positive")
        self.shape = shape
        self.scale_s = scale_s

    @classmethod
    def from_quantiles(
        cls,
        p90_s: float = 13.5 * HOUR_S,
        p99_s: float = 53.9 * HOUR_S,
        conditioned_above_s: float = 300.0,
    ) -> "WeibullFailures":
        """Fit shape/scale so the *filtered* CDF hits two quantiles.

        The paper's Fig 3 removes jobs failing within five minutes
        before plotting, so its published P90/P99 are quantiles of the
        distribution conditioned on ``T >= conditioned_above_s``. For a
        Weibull, P(T <= t | T >= m) = p gives

            (t / scale)^shape - (m / scale)^shape = -ln(1 - p)

        Two quantiles yield ``t99^k + m^k = 2 t90^k`` (since
        -ln(0.01) = 2 * -ln(0.1)), solved for the shape ``k`` by
        bisection; the scale follows in closed form. With
        ``conditioned_above_s=0`` this reduces to the unconditioned
        closed-form fit.
        """
        if p99_s <= p90_s or p90_s <= 0:
            raise SimulationError("need 0 < p90 < p99")
        if conditioned_above_s < 0 or conditioned_above_s >= p90_s:
            raise SimulationError(
                "conditioning threshold must be in [0, p90)"
            )
        m = conditioned_above_s
        if m == 0.0:
            shape = math.log(
                math.log(100.0) / math.log(10.0)
            ) / math.log(p99_s / p90_s)
            scale = p90_s / (math.log(10.0) ** (1.0 / shape))
            return cls(shape=shape, scale_s=scale)

        def residual(k: float) -> float:
            return p99_s**k + m**k - 2.0 * p90_s**k

        lo, hi = 1e-3, 5.0
        if residual(lo) * residual(hi) > 0:
            raise SimulationError(
                "quantile pair is not fittable by a conditioned Weibull"
            )
        for _ in range(200):
            mid = (lo + hi) / 2.0
            if residual(lo) * residual(mid) <= 0:
                hi = mid
            else:
                lo = mid
        shape = (lo + hi) / 2.0
        scale = (
            (p90_s**shape - m**shape) / math.log(10.0)
        ) ** (1.0 / shape)
        return cls(shape=shape, scale_s=scale)

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.scale_s * rng.weibull(self.shape))

    def sample_many(self, count, rng):
        if count < 0:
            raise SimulationError(f"negative sample count {count}")
        return self.scale_s * rng.weibull(self.shape, size=count)

    def mean_s(self) -> float:
        return self.scale_s * math.gamma(1.0 + 1.0 / self.shape)

    def cdf(self, t_s: float) -> float:
        """Exact CDF (for comparing the empirical trace against)."""
        if t_s <= 0:
            return 0.0
        return 1.0 - math.exp(-((t_s / self.scale_s) ** self.shape))

    def quantile(self, p: float) -> float:
        """Inverse CDF in seconds."""
        if not 0.0 <= p < 1.0:
            raise SimulationError(f"quantile p must be in [0, 1), got {p}")
        return self.scale_s * (-math.log(1.0 - p)) ** (1.0 / self.shape)

    def conditioned_quantile(self, p: float, above_s: float) -> float:
        """Quantile of T | T >= above_s (the filtered Fig 3 CDF)."""
        if not 0.0 <= p < 1.0:
            raise SimulationError(f"quantile p must be in [0, 1), got {p}")
        if above_s < 0:
            raise SimulationError("conditioning threshold must be >= 0")
        base = (above_s / self.scale_s) ** self.shape
        return self.scale_s * (base - math.log(1.0 - p)) ** (
            1.0 / self.shape
        )


class LogNormalFailures(FailureModel):
    """Log-normal failures — an alternative heavy-tail hypothesis."""

    name = "lognormal"

    def __init__(self, mu: float, sigma: float) -> None:
        if sigma <= 0:
            raise SimulationError("sigma must be positive")
        self.mu = mu
        self.sigma = sigma

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self.mu, self.sigma))

    def sample_many(self, count, rng):
        if count < 0:
            raise SimulationError(f"negative sample count {count}")
        return rng.lognormal(self.mu, self.sigma, size=count)

    def mean_s(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)


class MixtureFailures(FailureModel):
    """Weighted mixture — e.g. fast config errors + slow hardware faults."""

    name = "mixture"

    def __init__(
        self, components: list[FailureModel], weights: list[float]
    ) -> None:
        if not components or len(components) != len(weights):
            raise SimulationError(
                "mixture needs matching components and weights"
            )
        total = sum(weights)
        if total <= 0 or any(w < 0 for w in weights):
            raise SimulationError("weights must be non-negative, sum > 0")
        self.components = list(components)
        self.weights = [w / total for w in weights]

    def sample(self, rng: np.random.Generator) -> float:
        index = rng.choice(len(self.components), p=self.weights)
        return self.components[index].sample(rng)

    def mean_s(self) -> float:
        return sum(
            w * c.mean_s() for w, c in zip(self.weights, self.components)
        )


class ScheduledFailures(FailureModel):
    """Replays an explicit schedule of failure gaps (trace replay).

    Deterministic failure injection for tests and record/replay
    experiments: each ``sample`` pops the next inter-failure gap; once
    the schedule is exhausted, failures never occur again.
    """

    name = "scheduled"

    def __init__(self, gaps_s: list[float]) -> None:
        if any(g < 0 for g in gaps_s):
            raise SimulationError("failure gaps must be non-negative")
        self._gaps = list(gaps_s)
        self._index = 0

    def sample(self, rng: np.random.Generator) -> float:
        if self._index >= len(self._gaps):
            return float("inf")  # schedule exhausted: no more failures
        gap = self._gaps[self._index]
        self._index += 1
        return gap

    def mean_s(self) -> float:
        if not self._gaps:
            return float("inf")
        return float(np.mean(self._gaps))

    @property
    def remaining(self) -> int:
        return len(self._gaps) - self._index


def paper_failure_model() -> WeibullFailures:
    """The Fig 3 model: Weibull fit to the paper's published quantiles."""
    return WeibullFailures.from_quantiles()
