"""Failure traces: generation, filtering, empirical CDFs (Fig 3).

A trace is a set of per-job time-to-failure observations. The paper
filters jobs failing within five minutes ("usually simple user setup
errors") before plotting the CDF; the same filter is applied here.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from .models import HOUR_S, FailureModel


@dataclass(frozen=True)
class CdfPoint:
    """One point of an empirical CDF."""

    time_s: float
    fraction: float

    @property
    def time_hours(self) -> float:
        return self.time_s / HOUR_S


class FailureTrace:
    """Observed time-to-failure samples with CDF/quantile queries."""

    def __init__(self, times_s: np.ndarray) -> None:
        if times_s.ndim != 1:
            raise SimulationError("trace must be a 1-D array of seconds")
        if times_s.size == 0:
            raise SimulationError("trace must contain at least one sample")
        if np.any(times_s < 0):
            raise SimulationError("failure times must be non-negative")
        self.times_s = np.sort(times_s.astype(np.float64))

    @classmethod
    def generate(
        cls,
        model: FailureModel,
        num_jobs: int,
        seed: int = 0,
        min_failure_s: float = 300.0,
    ) -> "FailureTrace":
        """Sample a fleet month: ``num_jobs`` failures, short ones filtered."""
        if num_jobs < 1:
            raise SimulationError("need at least one job")
        rng = np.random.default_rng(seed)
        times = model.sample_many(num_jobs, rng)
        kept = times[times >= min_failure_s]
        if kept.size == 0:
            raise SimulationError(
                "every sampled failure fell under the filter threshold"
            )
        return cls(kept)

    def cdf(self, num_points: int = 100) -> list[CdfPoint]:
        """Evenly spaced empirical CDF points (the Fig 3 curve)."""
        if num_points < 2:
            raise SimulationError("need at least two CDF points")
        n = self.times_s.size
        fractions = np.linspace(1.0 / n, 1.0, num_points)
        indices = np.minimum(
            (fractions * n).astype(int), n - 1
        )
        return [
            CdfPoint(float(self.times_s[i]), float(f))
            for i, f in zip(indices, fractions)
        ]

    def quantile(self, p: float) -> float:
        """Empirical quantile in seconds (e.g. p=0.9 -> P90 runtime)."""
        if not 0.0 <= p <= 1.0:
            raise SimulationError(f"p must be in [0, 1], got {p}")
        return float(np.quantile(self.times_s, p))

    def fraction_failing_before(self, t_s: float) -> float:
        """CDF evaluated at ``t_s``."""
        return float(np.searchsorted(self.times_s, t_s) / self.times_s.size)

    @property
    def count(self) -> int:
        return int(self.times_s.size)

    # ------------------------------------------------------------------
    # Persistence (record/replay)
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps({"times_s": self.times_s.tolist()})

    @classmethod
    def from_json(cls, blob: str | bytes) -> "FailureTrace":
        try:
            data = json.loads(blob)
            return cls(np.asarray(data["times_s"], dtype=np.float64))
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise SimulationError(f"corrupt failure trace: {exc}") from exc
