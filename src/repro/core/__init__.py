"""Check-N-Run core: the paper's checkpointing system."""

from .bitwidth import (
    FALLBACK_BIT_WIDTH,
    BitWidthController,
    expected_restores,
    select_bit_width,
)
from .controller import (
    OVERLAP_CANCEL_PREVIOUS,
    OVERLAP_SKIP_NEW,
    CheckNRun,
    CheckpointEvent,
    ControllerStats,
    PendingCheckpoint,
    PendingRestore,
)
from .coordination import ReaderCoordinator
from .manifest import (
    KIND_FULL,
    KIND_INCREMENTAL,
    CheckpointManifest,
    ChunkRecord,
    ShardRecord,
)
from .policies import (
    CheckpointPolicy,
    ConsecutivePolicy,
    FullPolicy,
    IntermittentPolicy,
    OneShotPolicy,
    PolicyState,
    make_policy,
)
from .predictor import (
    HistoryPredictor,
    LinearTrendPredictor,
    make_predictor,
)
from .publisher import OnlinePublisher, PublishEvent, PublisherStats
from .restore import CheckpointRestorer, ReadStep, RestoreReport
from .retention import RetentionManager, RetentionReport
from .snapshot import ModelSnapshot, ShardSnapshot, SnapshotManager
from .tracker import ModifiedRowTracker, TrackerSet
from .writer import CheckpointWriter, WriteReport

__all__ = [
    "FALLBACK_BIT_WIDTH",
    "KIND_FULL",
    "KIND_INCREMENTAL",
    "OVERLAP_CANCEL_PREVIOUS",
    "OVERLAP_SKIP_NEW",
    "BitWidthController",
    "CheckNRun",
    "CheckpointEvent",
    "CheckpointManifest",
    "CheckpointPolicy",
    "CheckpointRestorer",
    "CheckpointWriter",
    "ChunkRecord",
    "ConsecutivePolicy",
    "ControllerStats",
    "FullPolicy",
    "HistoryPredictor",
    "IntermittentPolicy",
    "LinearTrendPredictor",
    "ModelSnapshot",
    "ModifiedRowTracker",
    "OneShotPolicy",
    "OnlinePublisher",
    "PendingCheckpoint",
    "PendingRestore",
    "PublishEvent",
    "PublisherStats",
    "PolicyState",
    "ReaderCoordinator",
    "ReadStep",
    "RestoreReport",
    "RetentionManager",
    "RetentionReport",
    "ShardRecord",
    "ShardSnapshot",
    "SnapshotManager",
    "TrackerSet",
    "WriteReport",
    "expected_restores",
    "make_policy",
    "make_predictor",
    "select_bit_width",
]
