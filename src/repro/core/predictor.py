"""When to refresh the full baseline: the intermittent predictor.

Paper section 5.1 ("Intermittent Incremental Checkpoint"): incremental
checkpoints grow as the modified-row set accumulates, so Check-N-Run
periodically takes a fresh full checkpoint. The decision uses a simple
history-based comparison at the (i+1)-th interval:

    S_0 = 1 (full baseline), S_1..S_i = past incremental sizes
    F_c = 1 + S_1 + ... + S_i     (cost of restarting with a full ckpt,
                                   assuming the future mirrors the past)
    I_c = (i + 1) * S_i           (lower bound on continuing incremental:
                                   future increments are at least S_i)

    take a full checkpoint iff F_c <= I_c

The paper notes "this approach can be improved with more accurate
prediction models, which are part of future work" — we also implement a
linear-trend extrapolation predictor as that extension, and an ablation
bench compares the two.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import CheckpointError


class BaselineRefreshPredictor(ABC):
    """Decides whether the next checkpoint should be a fresh full one."""

    name: str = "abstract"

    @abstractmethod
    def should_take_full(self, incremental_sizes: list[float]) -> bool:
        """Args: sizes S_1..S_i of the increments since the last full
        checkpoint, as fractions of that full checkpoint's size."""

    @staticmethod
    def _validate(sizes: list[float]) -> None:
        if any(s < 0 for s in sizes):
            raise CheckpointError(
                f"negative checkpoint size fraction in history: {sizes}"
            )


class HistoryPredictor(BaselineRefreshPredictor):
    """The paper's F_c <= I_c rule."""

    name = "history"

    def should_take_full(self, incremental_sizes: list[float]) -> bool:
        self._validate(incremental_sizes)
        if not incremental_sizes:
            return False  # nothing since the baseline yet
        i = len(incremental_sizes)
        future_full = 1.0 + sum(incremental_sizes)  # F_c
        future_incremental = (i + 1) * incremental_sizes[-1]  # I_c
        return future_full <= future_incremental


class LinearTrendPredictor(BaselineRefreshPredictor):
    """The paper's future-work extension: extrapolate increment growth.

    Fits a least-squares line through the increment-size history and
    projects the next ``i + 1`` increment sizes (clipped to
    [last size, 1.0] — increments never shrink under a one-shot
    baseline and never exceed a full checkpoint). Takes a full
    checkpoint when the projected incremental cost exceeds the
    full-restart cost.
    """

    name = "linear_trend"

    def __init__(self, min_history: int = 2) -> None:
        if min_history < 2:
            raise CheckpointError("linear trend needs >= 2 history points")
        self.min_history = min_history

    def should_take_full(self, incremental_sizes: list[float]) -> bool:
        self._validate(incremental_sizes)
        i = len(incremental_sizes)
        if i < self.min_history:
            # Not enough points for a slope; fall back to the paper rule.
            return HistoryPredictor().should_take_full(incremental_sizes)
        x = np.arange(1, i + 1, dtype=np.float64)
        y = np.asarray(incremental_sizes, dtype=np.float64)
        slope, intercept = np.polyfit(x, y, 1)
        future_x = np.arange(i + 1, 2 * i + 2, dtype=np.float64)
        projected = np.clip(slope * future_x + intercept, y[-1], 1.0)
        future_incremental = float(np.sum(projected))
        future_full = 1.0 + float(np.sum(y))
        return future_full <= future_incremental


def make_predictor(name: str) -> BaselineRefreshPredictor:
    """Predictor factory ('history' or 'linear_trend')."""
    if name == "history":
        return HistoryPredictor()
    if name == "linear_trend":
        return LinearTrendPredictor()
    raise CheckpointError(
        f"unknown predictor {name!r}; valid: history, linear_trend"
    )
