"""Incremental checkpointing policies (paper section 5.1).

Four policies govern what each checkpoint stores and what a restore
must read:

* **full** — every checkpoint stores the whole model. The paper's
  baseline (and effectively what CheckFreq-style systems do).
* **one_shot** — one full baseline, then every increment stores all
  rows modified *since the baseline*. Restore = baseline + latest
  increment. Increment sizes grow without bound.
* **consecutive** — each increment stores only rows modified during the
  *last interval*. Smallest writes (~constant size), but restore must
  replay the entire chain and storage accumulates every increment.
* **intermittent** — one_shot plus a predictor that refreshes the full
  baseline when continuing incrementally would cost more
  (:mod:`repro.core.predictor`). Check-N-Run's default.

A policy also owns the tracker-reset rule (one_shot tracks since
baseline; consecutive tracks since the last checkpoint) and the
restore-chain/protection logic the retention machinery relies on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..errors import CheckpointError, RestoreChainBrokenError
from .manifest import KIND_FULL, KIND_INCREMENTAL, CheckpointManifest
from .predictor import BaselineRefreshPredictor, HistoryPredictor


@dataclass(frozen=True)
class PolicyState:
    """Inputs to the full-vs-incremental decision."""

    interval_index: int
    #: Sizes of increments since the last full checkpoint, as fractions
    #: of that full checkpoint's logical size.
    incremental_sizes: tuple[float, ...]


class CheckpointPolicy(ABC):
    """Strategy object: decide kinds, reset rules, restore chains."""

    name: str = "abstract"

    @abstractmethod
    def decide(self, state: PolicyState) -> str:
        """Return KIND_FULL or KIND_INCREMENTAL for the next checkpoint."""

    @abstractmethod
    def reset_tracker_after(self, kind: str) -> bool:
        """Whether the modified-row trackers clear after a ``kind`` ckpt."""

    def restore_chain(
        self,
        target: CheckpointManifest,
        manifests: dict[str, CheckpointManifest],
    ) -> list[CheckpointManifest]:
        """Ordered list of checkpoints to load (base first) for ``target``.

        The default walks ``base_id`` links back to a full checkpoint,
        which is correct for every policy here: full checkpoints are
        single-element chains; one_shot/intermittent increments point
        directly at their baseline; consecutive increments point at the
        previous checkpoint, producing the whole chain.
        """
        chain: list[CheckpointManifest] = [target]
        seen = {target.checkpoint_id}
        current = target
        while current.kind == KIND_INCREMENTAL:
            base_id = current.base_id
            if base_id is None or base_id not in manifests:
                raise RestoreChainBrokenError(
                    f"checkpoint {current.checkpoint_id} references "
                    f"missing base {base_id!r}"
                )
            if base_id in seen:
                raise RestoreChainBrokenError(
                    f"cycle in restore chain at {base_id!r}"
                )
            current = manifests[base_id]
            seen.add(current.checkpoint_id)
            chain.append(current)
        chain.reverse()
        return chain

    def protected_ids(
        self,
        keep: list[CheckpointManifest],
        manifests: dict[str, CheckpointManifest],
    ) -> set[str]:
        """Checkpoint ids that must survive for ``keep`` to be restorable."""
        protected: set[str] = set()
        for manifest in keep:
            for link in self.restore_chain(manifest, manifests):
                protected.add(link.checkpoint_id)
        return protected


class FullPolicy(CheckpointPolicy):
    """Every checkpoint is a full model dump — the paper's baseline."""

    name = "full"

    def decide(self, state: PolicyState) -> str:
        return KIND_FULL

    def reset_tracker_after(self, kind: str) -> bool:
        return True


class OneShotPolicy(CheckpointPolicy):
    """Single baseline; increments accumulate rows modified since it."""

    name = "one_shot"

    def decide(self, state: PolicyState) -> str:
        return KIND_FULL if state.interval_index == 0 else KIND_INCREMENTAL

    def reset_tracker_after(self, kind: str) -> bool:
        # The tracker keeps accumulating across increments; only a new
        # baseline (the very first checkpoint) clears it.
        return kind == KIND_FULL


class ConsecutivePolicy(CheckpointPolicy):
    """Increments store only the last interval's modified rows."""

    name = "consecutive"

    def decide(self, state: PolicyState) -> str:
        return KIND_FULL if state.interval_index == 0 else KIND_INCREMENTAL

    def reset_tracker_after(self, kind: str) -> bool:
        return True  # every checkpoint starts a fresh interval view


class IntermittentPolicy(CheckpointPolicy):
    """One-shot behaviour with predictor-driven baseline refreshes.

    Check-N-Run's default (section 6.3.1): the history predictor
    triggers a new full checkpoint when the accumulated increment sizes
    make a refresh cheaper in expectation.
    """

    name = "intermittent"

    def __init__(
        self, predictor: BaselineRefreshPredictor | None = None
    ) -> None:
        self.predictor = predictor or HistoryPredictor()

    def decide(self, state: PolicyState) -> str:
        if state.interval_index == 0:
            return KIND_FULL
        if self.predictor.should_take_full(
            list(state.incremental_sizes)
        ):
            return KIND_FULL
        return KIND_INCREMENTAL

    def reset_tracker_after(self, kind: str) -> bool:
        return kind == KIND_FULL


def make_policy(
    name: str, predictor: BaselineRefreshPredictor | None = None
) -> CheckpointPolicy:
    """Policy factory matching :data:`repro.config.POLICY_NAMES`."""
    if name == "full":
        return FullPolicy()
    if name == "one_shot":
        return OneShotPolicy()
    if name == "consecutive":
        return ConsecutivePolicy()
    if name == "intermittent":
        return IntermittentPolicy(predictor)
    raise CheckpointError(
        f"unknown policy {name!r}; valid: full, one_shot, consecutive, "
        "intermittent"
    )
