"""Decoupled snapshotting (paper section 4.2).

Checkpoint consistency requires an atomic copy of the model state.
Check-N-Run stalls training only while each node copies its local
shards from GPU HBM to host DRAM; as soon as every node's in-memory
snapshot exists, training resumes and the (slow) optimize-and-store
pipeline works off the snapshot in background CPU processes.

The stall duration is the max over nodes of their copy time (nodes copy
concurrently) plus a fixed synchronisation overhead. At the paper's
scale this is < 7 s per snapshot, i.e. < 0.4% of a 30-minute interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.state import ReaderState, TrainerProgress
from ..distributed.clock import SimClock
from ..distributed.trainer import SimTrainer
from ..errors import CheckpointError
from .tracker import TrackerSet


@dataclass
class ShardSnapshot:
    """Host-DRAM copy of one shard's checkpointable state."""

    shard_id: int
    table_id: int
    row_start: int
    row_end: int
    weight: np.ndarray  # (rows, dim) fp32 copy
    accumulator: np.ndarray  # (rows,) fp32 copy
    mask: np.ndarray  # (rows,) bool copy of the tracker bit-vector

    @property
    def nbytes(self) -> int:
        return (
            self.weight.nbytes
            + self.accumulator.nbytes
            + (self.mask.shape[0] + 7) // 8
        )


@dataclass
class ModelSnapshot:
    """A complete, consistent, in-host-memory copy of the training state."""

    taken_at_s: float
    interval_index: int
    stall_time_s: float
    dense_state: dict[str, np.ndarray]
    shards: dict[int, ShardSnapshot]
    reader_state: ReaderState
    trainer_progress: TrainerProgress
    host_bytes_by_node: dict[int, int] = field(default_factory=dict)
    _released: bool = False

    @property
    def total_bytes(self) -> int:
        dense = sum(a.nbytes for a in self.dense_state.values())
        return dense + sum(s.nbytes for s in self.shards.values())

    def release(self, trainer: SimTrainer) -> None:
        """Free the host-DRAM reservation once the checkpoint is written."""
        if self._released:
            return
        for node_id, nbytes in self.host_bytes_by_node.items():
            trainer.cluster.nodes[node_id].free_host(nbytes)
        self._released = True


class SnapshotManager:
    """Takes stall-accounted snapshots of a :class:`SimTrainer`."""

    def __init__(self, trainer: SimTrainer, clock: SimClock) -> None:
        self.trainer = trainer
        self.clock = clock
        self.snapshots_taken = 0
        self.total_stall_s = 0.0

    def stall_time_s(self) -> float:
        """Simulated stall for one snapshot on the current cluster.

        Nodes copy concurrently; the barrier releases when the slowest
        node finishes, plus a fixed synchronisation overhead.
        """
        cluster = self.trainer.cluster
        per_node = [
            node.copy_time_s(self.trainer.node_snapshot_bytes(node.node_id))
            for node in cluster.nodes
        ]
        return max(per_node) + cluster.config.snapshot_fixed_overhead_s

    def take_snapshot(
        self,
        interval_index: int,
        tracker_set: TrackerSet,
        reader_state: ReaderState,
    ) -> ModelSnapshot:
        """Stall training, copy state to host DRAM, resume.

        The returned snapshot owns host-memory reservations; callers
        must :meth:`ModelSnapshot.release` it after the checkpoint is
        written (or abandoned).
        """
        trainer = self.trainer
        stall = self.stall_time_s()
        self.clock.advance(stall, "snapshot_stall")
        self.total_stall_s += stall

        masks = tracker_set.mask_copies()
        shard_snapshots: dict[int, ShardSnapshot] = {}
        host_bytes: dict[int, int] = {}
        for shard in trainer.plan.shards:
            if shard.shard_id not in masks:
                raise CheckpointError(
                    f"no tracker mask for shard {shard.shard_id}"
                )
            snapshot = ShardSnapshot(
                shard_id=shard.shard_id,
                table_id=shard.table_id,
                row_start=shard.row_start,
                row_end=shard.row_end,
                weight=trainer.shard_weight(shard).copy(),
                accumulator=trainer.shard_accumulator(shard).copy(),
                mask=masks[shard.shard_id],
            )
            shard_snapshots[shard.shard_id] = snapshot
            node = shard.device_id.node
            host_bytes[node] = host_bytes.get(node, 0) + snapshot.nbytes

        dense_state = trainer.model.dense_state()
        dense_bytes = sum(a.nbytes for a in dense_state.values())
        host_bytes[0] = host_bytes.get(0, 0) + dense_bytes

        for node_id, nbytes in host_bytes.items():
            trainer.cluster.nodes[node_id].allocate_host(
                nbytes, what=f"snapshot@interval{interval_index}"
            )

        self.snapshots_taken += 1
        return ModelSnapshot(
            taken_at_s=self.clock.now,
            interval_index=interval_index,
            stall_time_s=stall,
            dense_state=dense_state,
            shards=shard_snapshots,
            reader_state=reader_state,
            trainer_progress=trainer.progress(),
            host_bytes_by_node=host_bytes,
        )

    def stall_fraction(self) -> float:
        """Fraction of all simulated time spent stalled for snapshots."""
        if self.clock.now == 0:
            return 0.0
        return self.total_stall_s / self.clock.now
