"""The chunked, pipelined checkpoint writer (paper sections 4.4, 6.1).

Working from an in-memory snapshot, the writer:

1. selects rows per shard (all rows for a full checkpoint, the
   tracker-masked rows for an incremental one);
2. quantizes chunk by chunk on the background CPU lane (real numpy
   work, plus a calibrated simulated latency at paper scale);
3. stores each chunk as soon as it is quantized — the storage transfer
   of chunk *k* overlaps the quantization of chunk *k + 1*, which is
   why the paper calls the effective quantization latency "virtually
   zero" when storage bandwidth is the bottleneck;
4. writes the manifest last; its completion time is the checkpoint's
   validity time.

Chunk payloads are CRC-framed and self-describing: absolute table row
ids, quantized (or raw fp32) weights, and the optimizer accumulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from ..distributed.clock import SimClock, Stopwatch, Timeline
from ..errors import CheckpointError
from ..metrics.latency import LatencyModel
from ..quant.base import Quantizer
from ..quant.uniform import AsymmetricQuantizer
from ..serialize.codec import encode_array, encode_payload
from ..serialize.format import encode_frames
from ..storage.object_store import ObjectStore
from .manifest import (
    KIND_FULL,
    KIND_INCREMENTAL,
    CheckpointManifest,
    ChunkRecord,
    ShardRecord,
    chunk_key,
    dense_key,
    manifest_key,
)
from .snapshot import ModelSnapshot


@dataclass(frozen=True)
class WriteReport:
    """Timing/size breakdown of one checkpoint write."""

    checkpoint_id: str
    kind: str
    logical_bytes: int
    physical_bytes: int
    rows_written: int
    num_chunks: int
    quantize_sim_s: float  # simulated CPU time at paper-scale calibration
    measured_quantize_s: float  # real numpy wall time (transparency)
    started_at_s: float
    valid_at_s: float

    @property
    def pipeline_duration_s(self) -> float:
        """Trigger-to-valid latency of the checkpoint."""
        return self.valid_at_s - self.started_at_s


@dataclass(frozen=True)
class WriteStep:
    """One pending store submission of a staged checkpoint write.

    The staged writer (see :meth:`CheckpointWriter.write_checkpoint_steps`)
    yields a ``WriteStep`` *before* each object PUT. ``ready_s`` is the
    earliest simulated time the transfer could start (a chunk's
    quantization-finish time on the CPU lane); the fleet scheduler uses
    it to interleave chunk submissions from concurrent jobs in event
    order, which is what makes cross-job link sharing fair at chunk
    granularity. Resuming the generator performs the PUT.
    """

    kind: str  # "chunk", "dense", or "manifest"
    key: str
    ready_s: float


class CheckpointWriter:
    """Builds and stores checkpoints from snapshots, in the background."""

    def __init__(
        self,
        store: ObjectStore,
        clock: SimClock,
        latency_model: LatencyModel | None = None,
    ) -> None:
        self.store = store
        self.clock = clock
        self.latency_model = latency_model or LatencyModel()
        self.quant_lane = Timeline(clock, "quantize")

    # ------------------------------------------------------------------

    def _select_rows(self, kind: str, mask: np.ndarray) -> np.ndarray:
        if kind == KIND_FULL:
            return np.arange(mask.shape[0], dtype=np.int64)
        if kind == KIND_INCREMENTAL:
            return np.flatnonzero(mask).astype(np.int64)
        raise CheckpointError(f"unknown checkpoint kind {kind!r}")

    def _quantize_weights(
        self,
        quantizer: Quantizer,
        weights: np.ndarray,
        stopwatch: Stopwatch,
    ) -> bytes:
        with stopwatch:
            qt = quantizer.quantize(weights)
        return encode_payload(qt)

    def _encode_accumulator(
        self,
        accumulator: np.ndarray,
        quantize_state: bool,
        bits: int,
        stopwatch: Stopwatch,
    ) -> bytes:
        """Accumulators ride along: 8-bit asymmetric or raw fp32.

        The accumulator is one scalar per row; quantizing it as a single
        long vector keeps the parameter overhead to one (xmin, xmax)
        pair instead of one pair per row.
        """
        if not quantize_state or accumulator.size == 0:
            return encode_array(accumulator.astype(np.float32))
        with stopwatch:
            qt = AsymmetricQuantizer(max(bits, 8)).quantize(
                accumulator.reshape(1, -1).astype(np.float32)
            )
        return encode_payload(qt)

    # ------------------------------------------------------------------

    def write_checkpoint(
        self,
        snapshot: ModelSnapshot,
        kind: str,
        checkpoint_id: str,
        job_id: str,
        base_id: str | None,
        policy_name: str,
        quantizer: Quantizer,
        chunk_rows: int,
        quantize_optimizer_state: bool = True,
        adaptive_num_bins: int = 25,
        adaptive_ratio: float = 1.0,
    ) -> tuple[CheckpointManifest, WriteReport]:
        """Quantize, chunk, and store one checkpoint; manifest last.

        Drains :meth:`write_checkpoint_steps` to completion — the
        single-job path, with submission order (and therefore timing)
        identical to the pre-staged writer.
        """
        steps = self.write_checkpoint_steps(
            snapshot,
            kind,
            checkpoint_id,
            job_id,
            base_id,
            policy_name,
            quantizer,
            chunk_rows,
            quantize_optimizer_state,
            adaptive_num_bins,
            adaptive_ratio,
        )
        while True:
            try:
                next(steps)
            except StopIteration as stop:
                return stop.value

    def write_checkpoint_steps(
        self,
        snapshot: ModelSnapshot,
        kind: str,
        checkpoint_id: str,
        job_id: str,
        base_id: str | None,
        policy_name: str,
        quantizer: Quantizer,
        chunk_rows: int,
        quantize_optimizer_state: bool = True,
        adaptive_num_bins: int = 25,
        adaptive_ratio: float = 1.0,
    ) -> Generator[WriteStep, None, tuple[CheckpointManifest, WriteReport]]:
        """Staged checkpoint write: yields before every object PUT.

        Quantization runs eagerly when the generator is advanced; the
        following PUT is deferred until the next resume, so a fleet
        scheduler can interleave chunk submissions from many jobs on
        the shared link in ``ready_s`` order. Abandoning the generator
        mid-flight leaves chunks without a manifest — exactly the torn
        state a mid-write crash produces, which the restore path must
        skip (manifest-last invariant, paper section 4.4).
        """
        if chunk_rows < 1:
            raise CheckpointError("chunk_rows must be >= 1")
        started_at = self.clock.now
        stopwatch = Stopwatch()
        quantize_sim_total = 0.0
        logical_total = 0
        physical_total = 0
        rows_total = 0
        chunks_total = 0
        last_end = started_at
        shard_records: list[ShardRecord] = []

        for shard in snapshot.shards.values():
            selected = self._select_rows(kind, shard.mask)
            chunk_records: list[ChunkRecord] = []
            for chunk_index, start in enumerate(
                range(0, selected.shape[0], chunk_rows)
            ):
                local_rows = selected[start : start + chunk_rows]
                table_rows = local_rows + shard.row_start
                weights = shard.weight[local_rows]
                accum = shard.accumulator[local_rows]

                # Real quantization (measured) + simulated CPU latency.
                weights_payload = self._quantize_weights(
                    quantizer, weights, stopwatch
                )
                accum_payload = self._encode_accumulator(
                    accum,
                    quantize_optimizer_state,
                    quantizer.bits,
                    stopwatch,
                )
                quant_sim = self.latency_model.for_quantizer(
                    quantizer.name,
                    int(weights.size),
                    bits=quantizer.bits,
                    num_bins=adaptive_num_bins,
                    ratio=adaptive_ratio,
                )
                quantize_sim_total += quant_sim
                quant_span = self.quant_lane.submit(
                    quant_sim, label=f"quant:{checkpoint_id}:{shard.shard_id}"
                )

                # Row-id encoding: full checkpoints cover contiguous
                # ranges, so only (row_base, row_count) metadata is
                # needed; incremental chunks store explicit ids, int32
                # when the table permits (it always does below 2^31
                # rows) to halve the id overhead.
                if kind == KIND_FULL:
                    rows_payload = encode_array(
                        np.zeros(0, dtype=np.int32)
                    )
                    row_base = int(table_rows[0]) if table_rows.size else 0
                else:
                    rows_payload = encode_array(
                        table_rows.astype(np.int32)
                        if table_rows.size == 0
                        or table_rows.max() < 2**31
                        else table_rows
                    )
                    row_base = -1
                blob = encode_frames(
                    {
                        "checkpoint_id": checkpoint_id,
                        "shard_id": shard.shard_id,
                        "table_id": shard.table_id,
                        "chunk_index": chunk_index,
                        "row_count": int(table_rows.shape[0]),
                        "row_base": row_base,
                    },
                    [
                        (0, rows_payload),
                        (1, weights_payload),
                        (2, accum_payload),
                    ],
                )
                key = chunk_key(
                    job_id, checkpoint_id, shard.shard_id, chunk_index
                )
                yield WriteStep("chunk", key, quant_span.end)
                # Pipelining: the store transfer cannot start before
                # this chunk's quantization finished on the CPU lane.
                receipt = self.store.put(
                    key, blob, earliest=quant_span.end
                )
                chunk_records.append(
                    ChunkRecord(
                        key=key,
                        row_count=int(table_rows.shape[0]),
                        logical_bytes=receipt.logical_bytes,
                    )
                )
                logical_total += receipt.logical_bytes
                physical_total += receipt.physical_bytes
                rows_total += int(table_rows.shape[0])
                chunks_total += 1
                last_end = max(last_end, receipt.end_s)
            shard_records.append(
                ShardRecord(
                    shard_id=shard.shard_id,
                    table_id=shard.table_id,
                    row_start=shard.row_start,
                    row_end=shard.row_end,
                    chunks=tuple(chunk_records),
                )
            )

        # Dense state: always stored whole and in full precision — the
        # MLPs are <1% of the model and quantizing them buys nothing.
        dense_blob = encode_frames(
            {"checkpoint_id": checkpoint_id, "kind": "dense"},
            [
                (i, encode_frames({"name": name}, [(0, encode_array(arr))]))
                for i, (name, arr) in enumerate(
                    sorted(snapshot.dense_state.items())
                )
            ],
        )
        yield WriteStep(
            "dense", dense_key(job_id, checkpoint_id), self.clock.now
        )
        dense_receipt = self.store.put(
            dense_key(job_id, checkpoint_id), dense_blob
        )
        logical_total += dense_receipt.logical_bytes
        physical_total += dense_receipt.physical_bytes
        last_end = max(last_end, dense_receipt.end_s)

        def build_manifest(valid_at: float) -> CheckpointManifest:
            return CheckpointManifest(
                checkpoint_id=checkpoint_id,
                job_id=job_id,
                kind=kind,
                base_id=base_id,
                interval_index=snapshot.interval_index,
                policy=policy_name,
                quantizer=quantizer.name,
                bit_width=quantizer.bits,
                created_at_s=snapshot.taken_at_s,
                valid_at_s=valid_at,
                reader_state=snapshot.reader_state.to_dict(),
                trainer_progress=snapshot.trainer_progress.to_dict(),
                shards=tuple(shard_records),
                dense_key=dense_key(job_id, checkpoint_id),
                dense_bytes=dense_receipt.logical_bytes,
            )

        yield WriteStep(
            "manifest", manifest_key(job_id, checkpoint_id), last_end
        )
        # The manifest's validity time is the landing time of its own
        # bytes; predict it from the timeline before the single PUT (a
        # few bytes of JSON length drift, or backend jitter draws, are
        # timing noise). The store's per-op-class cost model owns the
        # PUT duration — the writer no longer assumes flat link math.
        draft = build_manifest(0.0).to_json().encode("utf-8")
        duration = self.store.predict_put_duration(len(draft))
        predicted_start = max(
            self.clock.now, self.store.timeline.free_at, last_end
        )
        manifest = build_manifest(predicted_start + duration)
        self.store.put(
            manifest_key(job_id, checkpoint_id),
            manifest.to_json().encode("utf-8"),
            earliest=last_end,
        )

        report = WriteReport(
            checkpoint_id=checkpoint_id,
            kind=kind,
            logical_bytes=logical_total,
            physical_bytes=physical_total,
            rows_written=rows_total,
            num_chunks=chunks_total,
            quantize_sim_s=quantize_sim_total,
            measured_quantize_s=stopwatch.elapsed,
            started_at_s=started_at,
            valid_at_s=manifest.valid_at_s,
        )
        return manifest, report
