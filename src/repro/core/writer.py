"""The chunked, pipelined checkpoint writer (paper sections 4.4, 6.1).

Working from an in-memory snapshot, the writer:

1. selects rows per shard (all rows for a full checkpoint, the
   tracker-masked rows for an incremental one);
2. quantizes chunk by chunk on the transfer engine's *worker pool*
   (real numpy work on background threads, so the measured wall time
   overlaps the writer's own encode/submit work the same way the
   calibrated simulated quantization lane overlaps the storage
   timeline), plus a simulated latency at paper scale;
3. stores each chunk as soon as it is quantized — the storage transfer
   of chunk *k* overlaps the quantization of chunk *k + 1*, which is
   why the paper calls the effective quantization latency "virtually
   zero" when storage bandwidth is the bottleneck. Against a multipart
   backend a chunk is staged as individual *parts*, announced one at a
   time so a fleet scheduler can interleave parts from many jobs;
4. writes the manifest last; its completion time is the checkpoint's
   validity time.

Chunk payloads are CRC-framed and self-describing: absolute table row
ids, quantized (or raw fp32) weights, and the optimizer accumulator.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, Generator

import numpy as np

from ..distributed.clock import SimClock, Timeline
from ..errors import CheckpointError
from ..metrics.latency import LatencyModel
from ..quant.base import Quantizer
from ..quant.uniform import AsymmetricQuantizer
from ..serialize.codec import encode_array, encode_payload
from ..serialize.format import encode_frames
from ..storage.object_store import ObjectStore
from .manifest import (
    KIND_FULL,
    KIND_INCREMENTAL,
    CheckpointManifest,
    ChunkRecord,
    ShardRecord,
    chunk_key,
    dense_key,
    manifest_key,
)
from .snapshot import ModelSnapshot

#: How many chunks ahead of the current store submission the writer
#: keeps quantization tasks in flight on the worker pool. 2 keeps the
#: pool busy across the caller's encode/submit work without holding
#: more than a few chunk payloads in memory.
QUANT_LOOKAHEAD = 2


@dataclass(frozen=True)
class WriteReport:
    """Timing/size breakdown of one checkpoint write."""

    checkpoint_id: str
    kind: str
    logical_bytes: int
    physical_bytes: int
    rows_written: int
    num_chunks: int
    quantize_sim_s: float  # simulated CPU time at paper-scale calibration
    measured_quantize_s: float  # real numpy wall time (transparency)
    started_at_s: float
    valid_at_s: float
    #: Real seconds the writer *blocked* waiting on worker-pool
    #: quantization tasks (0 when every task finished behind other
    #: work). ``measured_quantize_s - measured_wait_s`` is the measured
    #: wall-time overlap the pool bought.
    measured_wait_s: float = 0.0

    @property
    def pipeline_duration_s(self) -> float:
        """Trigger-to-valid latency of the checkpoint."""
        return self.valid_at_s - self.started_at_s

    @property
    def measured_overlap_s(self) -> float:
        """Real quantization seconds hidden behind the writer's own
        encode/submit progress — the measured counterpart of the
        simulated pipelining."""
        return max(0.0, self.measured_quantize_s - self.measured_wait_s)


@dataclass(frozen=True)
class WriteStep:
    """One pending store submission of a staged checkpoint write.

    The staged writer (see :meth:`CheckpointWriter.write_checkpoint_steps`)
    yields a ``WriteStep`` *before* each object PUT request. Against a
    multipart backend one chunk yields one step per *part*
    (``part_index`` of ``num_parts``); elsewhere a step is a whole
    object. ``ready_s`` is the earliest simulated time the transfer
    could start (a chunk's quantization-finish time on the CPU lane);
    the fleet scheduler uses it to interleave submissions from
    concurrent jobs in event order, which is what makes cross-job link
    sharing fair at part granularity. Resuming the generator performs
    the submission.
    """

    kind: str  # "chunk", "dense", or "manifest"
    key: str
    ready_s: float
    part_index: int = 1
    num_parts: int = 1


def _encode_chunk_payloads(
    quantizer: Quantizer,
    weights: np.ndarray,
    accumulator: np.ndarray,
    quantize_state: bool,
    bits: int,
) -> tuple[bytes, bytes, float]:
    """Worker-pool task: quantize one chunk's weights + accumulator.

    The accumulator is one scalar per row; quantizing it as a single
    long vector keeps the parameter overhead to one (xmin, xmax) pair
    instead of one pair per row. Returns the two encoded payloads plus
    the task's real busy seconds.
    """
    start = time.perf_counter()
    weights_payload = encode_payload(quantizer.quantize(weights))
    if not quantize_state or accumulator.size == 0:
        accum_payload = encode_array(accumulator.astype(np.float32))
    else:
        accum_payload = encode_payload(
            AsymmetricQuantizer(max(bits, 8)).quantize(
                accumulator.reshape(1, -1).astype(np.float32)
            )
        )
    return weights_payload, accum_payload, time.perf_counter() - start


class _InlineTask:
    """Worker-pool stand-in for stores without a transfer engine."""

    def __init__(self, value: object) -> None:
        self._value = value

    def result(self) -> object:
        return self._value


class CheckpointWriter:
    """Builds and stores checkpoints from snapshots, in the background."""

    def __init__(
        self,
        store: ObjectStore,
        clock: SimClock,
        latency_model: LatencyModel | None = None,
    ) -> None:
        self.store = store
        self.clock = clock
        self.latency_model = latency_model or LatencyModel()
        self.quant_lane = Timeline(clock, "quantize")

    # ------------------------------------------------------------------

    def _select_rows(self, kind: str, mask: np.ndarray) -> np.ndarray:
        if kind == KIND_FULL:
            return np.arange(mask.shape[0], dtype=np.int64)
        if kind == KIND_INCREMENTAL:
            return np.flatnonzero(mask).astype(np.int64)
        raise CheckpointError(f"unknown checkpoint kind {kind!r}")

    def _planned_parts(self, nbytes: int) -> int:
        """Multipart part count the store will split a payload into."""
        part_size = getattr(self.store.backend, "part_size_bytes", None)
        if part_size is None or nbytes <= part_size:
            return 1
        return -(-nbytes // part_size)

    def _staged_write(
        self,
        step_kind: str,
        key: str,
        payload: "bytes | Callable[[], bytes]",
        ready_s: float,
        earliest: float | None,
        announce_bytes: int | None = None,
    ) -> Generator[WriteStep, None, object]:
        """Stage one object PUT, yielding before every part request.

        The first yield announces the write; quota and capacity are
        only checked on resume, before any link time is spent, and a
        callable ``payload`` is also only built then (the manifest's
        validity prediction must read the link state at submission
        time, not announce time — pass ``announce_bytes`` so the
        announced part count does not need the built payload). Each
        subsequent resume submits exactly one part. Closing the
        generator mid-flight aborts the staged upload — no visible
        object, no orphaned parts.
        """
        if announce_bytes is None:
            assert isinstance(payload, (bytes, bytearray))
            announce_bytes = len(payload)
        num_parts = self._planned_parts(announce_bytes)
        yield WriteStep(step_kind, key, ready_s, 1, num_parts)
        if callable(payload):
            payload = payload()
        staged = self.store.stage_put(key, payload, earliest=earliest)
        try:
            receipt = staged.submit_next()
            while receipt is None:
                yield WriteStep(
                    step_kind,
                    key,
                    staged.next_ready_s,
                    staged.next_part_number,
                    staged.num_parts,
                )
                receipt = staged.submit_next()
            return receipt
        except GeneratorExit:
            staged.abort()
            raise

    # ------------------------------------------------------------------

    def write_checkpoint(
        self,
        snapshot: ModelSnapshot,
        kind: str,
        checkpoint_id: str,
        job_id: str,
        base_id: str | None,
        policy_name: str,
        quantizer: Quantizer,
        chunk_rows: int,
        quantize_optimizer_state: bool = True,
        adaptive_num_bins: int = 25,
        adaptive_ratio: float = 1.0,
    ) -> tuple[CheckpointManifest, WriteReport]:
        """Quantize, chunk, and store one checkpoint; manifest last.

        Drains :meth:`write_checkpoint_steps` to completion — the
        single-job path, with submission order (and therefore timing)
        identical to the pre-staged writer.
        """
        steps = self.write_checkpoint_steps(
            snapshot,
            kind,
            checkpoint_id,
            job_id,
            base_id,
            policy_name,
            quantizer,
            chunk_rows,
            quantize_optimizer_state,
            adaptive_num_bins,
            adaptive_ratio,
        )
        while True:
            try:
                next(steps)
            except StopIteration as stop:
                return stop.value

    def write_checkpoint_steps(
        self,
        snapshot: ModelSnapshot,
        kind: str,
        checkpoint_id: str,
        job_id: str,
        base_id: str | None,
        policy_name: str,
        quantizer: Quantizer,
        chunk_rows: int,
        quantize_optimizer_state: bool = True,
        adaptive_num_bins: int = 25,
        adaptive_ratio: float = 1.0,
    ) -> Generator[WriteStep, None, tuple[CheckpointManifest, WriteReport]]:
        """Staged checkpoint write: yields before every PUT request.

        Quantization runs on the transfer engine's worker pool with a
        :data:`QUANT_LOOKAHEAD`-deep pipeline, so the measured wall
        time of chunk *k + 1*'s quantization overlaps chunk *k*'s
        encoding and submission; the simulated quantization lane models
        the same overlap in simulated time. Each PUT is announced
        before it is submitted — against a multipart backend, once per
        *part* — so a fleet scheduler can interleave submissions from
        many jobs on the shared link in ``ready_s`` order. Abandoning
        the generator mid-flight leaves chunks without a manifest —
        exactly the torn state a mid-write crash produces, which the
        restore path must skip (manifest-last invariant, paper section
        4.4); *closing* it additionally aborts any in-flight multipart
        upload so no orphaned parts survive.
        """
        if chunk_rows < 1:
            raise CheckpointError("chunk_rows must be >= 1")
        started_at = self.clock.now
        engine = getattr(self.store, "engine", None)
        quantize_sim_total = 0.0
        measured_quantize = 0.0
        measured_wait = 0.0
        logical_total = 0
        physical_total = 0
        rows_total = 0
        chunks_total = 0
        last_end = started_at
        shard_records: list[ShardRecord] = []

        def submit_quantize(
            weights: np.ndarray, accumulator: np.ndarray
        ) -> object:
            args = (
                quantizer,
                weights,
                accumulator,
                quantize_optimizer_state,
                quantizer.bits,
            )
            if engine is None:
                return _InlineTask(_encode_chunk_payloads(*args))
            return engine.submit_task(_encode_chunk_payloads, *args)

        # Chunk plan across *all* shards, so the quantization lookahead
        # pipelines over shard boundaries too (fleet-scale jobs often
        # hold exactly one chunk per shard).
        plans: list[tuple[object, int, np.ndarray]] = []
        chunk_records_by_shard: dict[int, list[ChunkRecord]] = {}
        for shard in snapshot.shards.values():
            chunk_records_by_shard[shard.shard_id] = []
            selected = self._select_rows(kind, shard.mask)
            for chunk_index, start in enumerate(
                range(0, selected.shape[0], chunk_rows)
            ):
                plans.append(
                    (
                        shard,
                        chunk_index,
                        selected[start : start + chunk_rows],
                    )
                )

        # Lookahead pipeline: quantization tasks for the next few
        # chunks run on the pool while this thread encodes frames and
        # submits parts for the current one.
        tasks: list[object | None] = [None] * len(plans)
        for plan_index, (shard, chunk_index, local_rows) in enumerate(
            plans
        ):
            for ahead in range(
                plan_index,
                min(plan_index + 1 + QUANT_LOOKAHEAD, len(plans)),
            ):
                if tasks[ahead] is None:
                    ahead_shard, _, rows = plans[ahead]
                    tasks[ahead] = submit_quantize(
                        ahead_shard.weight[rows],
                        ahead_shard.accumulator[rows],
                    )
            task = tasks[plan_index]
            tasks[plan_index] = None
            assert task is not None
            blocked = time.perf_counter()
            weights_payload, accum_payload, busy_s = task.result()
            measured_wait += time.perf_counter() - blocked
            measured_quantize += busy_s

            table_rows = local_rows + shard.row_start
            num_values = int(local_rows.shape[0]) * int(
                shard.weight.shape[1]
            )
            quant_sim = self.latency_model.for_quantizer(
                quantizer.name,
                num_values,
                bits=quantizer.bits,
                num_bins=adaptive_num_bins,
                ratio=adaptive_ratio,
            )
            quantize_sim_total += quant_sim
            quant_span = self.quant_lane.submit(
                quant_sim, label=f"quant:{checkpoint_id}:{shard.shard_id}"
            )

            # Row-id encoding: full checkpoints cover contiguous
            # ranges, so only (row_base, row_count) metadata is
            # needed; incremental chunks store explicit ids, int32
            # when the table permits (it always does below 2^31
            # rows) to halve the id overhead.
            if kind == KIND_FULL:
                rows_payload = encode_array(
                    np.zeros(0, dtype=np.int32)
                )
                row_base = int(table_rows[0]) if table_rows.size else 0
            else:
                rows_payload = encode_array(
                    table_rows.astype(np.int32)
                    if table_rows.size == 0
                    or table_rows.max() < 2**31
                    else table_rows
                )
                row_base = -1
            blob = encode_frames(
                {
                    "checkpoint_id": checkpoint_id,
                    "shard_id": shard.shard_id,
                    "table_id": shard.table_id,
                    "chunk_index": chunk_index,
                    "row_count": int(table_rows.shape[0]),
                    "row_base": row_base,
                },
                [
                    (0, rows_payload),
                    (1, weights_payload),
                    (2, accum_payload),
                ],
            )
            key = chunk_key(
                job_id, checkpoint_id, shard.shard_id, chunk_index
            )
            # Pipelining: the store transfer cannot start before
            # this chunk's quantization finished on the CPU lane.
            receipt = yield from self._staged_write(
                "chunk", key, blob, quant_span.end, quant_span.end
            )
            chunk_records_by_shard[shard.shard_id].append(
                ChunkRecord(
                    key=key,
                    row_count=int(table_rows.shape[0]),
                    logical_bytes=receipt.logical_bytes,
                    digest=hashlib.sha256(blob).hexdigest(),
                )
            )
            logical_total += receipt.logical_bytes
            physical_total += receipt.physical_bytes
            rows_total += int(table_rows.shape[0])
            chunks_total += 1
            last_end = max(last_end, receipt.end_s)

        for shard in snapshot.shards.values():
            shard_records.append(
                ShardRecord(
                    shard_id=shard.shard_id,
                    table_id=shard.table_id,
                    row_start=shard.row_start,
                    row_end=shard.row_end,
                    chunks=tuple(
                        chunk_records_by_shard[shard.shard_id]
                    ),
                )
            )

        # Dense state: always stored whole and in full precision — the
        # MLPs are <1% of the model and quantizing them buys nothing.
        dense_blob = encode_frames(
            {"checkpoint_id": checkpoint_id, "kind": "dense"},
            [
                (i, encode_frames({"name": name}, [(0, encode_array(arr))]))
                for i, (name, arr) in enumerate(
                    sorted(snapshot.dense_state.items())
                )
            ],
        )
        dense_receipt = yield from self._staged_write(
            "dense",
            dense_key(job_id, checkpoint_id),
            dense_blob,
            self.clock.now,
            None,
        )
        logical_total += dense_receipt.logical_bytes
        physical_total += dense_receipt.physical_bytes
        last_end = max(last_end, dense_receipt.end_s)

        def build_manifest(valid_at: float) -> CheckpointManifest:
            return CheckpointManifest(
                checkpoint_id=checkpoint_id,
                job_id=job_id,
                kind=kind,
                base_id=base_id,
                interval_index=snapshot.interval_index,
                policy=policy_name,
                quantizer=quantizer.name,
                bit_width=quantizer.bits,
                created_at_s=snapshot.taken_at_s,
                valid_at_s=valid_at,
                reader_state=snapshot.reader_state.to_dict(),
                trainer_progress=snapshot.trainer_progress.to_dict(),
                shards=tuple(shard_records),
                dense_key=dense_key(job_id, checkpoint_id),
                dense_bytes=dense_receipt.logical_bytes,
                dense_digest=hashlib.sha256(dense_blob).hexdigest(),
            )

        mkey = manifest_key(job_id, checkpoint_id)
        draft = build_manifest(0.0).to_json().encode("utf-8")
        built: list[CheckpointManifest] = []

        def manifest_payload() -> bytes:
            # The manifest's validity time is the landing time of its
            # own bytes; predict it from the timeline at submission
            # time (a few bytes of JSON length drift, backend jitter
            # draws, or multipart completion latency are timing
            # noise). The store's per-op-class cost model owns the PUT
            # duration — the writer no longer assumes flat link math.
            duration = self.store.predict_put_duration(len(draft))
            predicted_start = max(
                self.clock.now, self.store.timeline.free_at, last_end
            )
            built.append(build_manifest(predicted_start + duration))
            return built[0].to_json().encode("utf-8")

        yield from self._staged_write(
            "manifest",
            mkey,
            manifest_payload,
            last_end,
            last_end,
            announce_bytes=len(draft),
        )
        manifest = built[0]

        report = WriteReport(
            checkpoint_id=checkpoint_id,
            kind=kind,
            logical_bytes=logical_total,
            physical_bytes=physical_total,
            rows_written=rows_total,
            num_chunks=chunks_total,
            quantize_sim_s=quantize_sim_total,
            measured_quantize_s=measured_quantize,
            started_at_s=started_at,
            valid_at_s=manifest.valid_at_s,
            measured_wait_s=measured_wait,
        )
        return manifest, report
