"""Checkpoint restore: chain resolution, de-quantization, state load.

Restoring follows the policy's chain (paper section 5.1): a full
checkpoint restores alone; a one-shot/intermittent increment needs its
baseline first; a consecutive increment needs the entire chain back to
the last full checkpoint, applied oldest-first so later increments
overwrite earlier rows.

Reads are *staged*, mirroring the write side: the restore walks its
chain as a generator (:meth:`CheckpointRestorer.restore_steps`) that
announces a :class:`ReadStep` before every GET part — against a
backend with ranged GETs, one step per ranged *part* — and submits it
when resumed. The single-caller :meth:`CheckpointRestorer.restore`
drains the generator immediately (timing-identical to the old
whole-chunk reads); the fleet scheduler instead interleaves steps from
every job recovering in a restore storm, so the shared link drains the
storm at part granularity in bandwidth-arbiter order.

Every chunk is CRC-verified by the frame reader; corruption surfaces as
:class:`CheckpointCorruptError` rather than silently wrong weights.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..data.reader import ReaderMaster
from ..data.state import ReaderState
from ..distributed.clock import SimClock
from ..errors import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointNotFoundError,
    ObjectNotFoundError,
    RestoreChainBrokenError,
    SerializationError,
)
from ..model.dlrm import DLRM
from ..quant.base import QuantizedTensor
from ..quant.registry import dequantize_tensor
from ..serialize.codec import decode_array, decode_payload
from ..serialize.format import decode_frames
from ..storage.object_store import ObjectStore
from ..storage.requests import OP_HEAD
from .manifest import (
    KIND_INCREMENTAL,
    CheckpointManifest,
    manifest_key,
)
from .policies import CheckpointPolicy, FullPolicy


def _drain(steps):
    """Run a staged-read generator to completion, returning its value."""
    while True:
        try:
            next(steps)
        except StopIteration as stop:
            return stop.value


#: Default chunk-read order: exactly the manifest's stored layout.
ORDER_MANIFEST = "manifest"
#: CPR-style priority restore: within each chain link, chunks holding
#: hot rows are read first (and the dense state up front), so training
#: or serving can resume before the cold tail lands.
ORDER_HOT_FIRST = "hot_first"

RESTORE_ORDERS = (ORDER_MANIFEST, ORDER_HOT_FIRST)


@dataclass(frozen=True)
class ReadStep:
    """One pending GET submission of a staged restore.

    The staged restorer (see :meth:`CheckpointRestorer.restore_steps`)
    yields a ``ReadStep`` *before* each GET request. Against a backend
    with ranged GETs one chunk yields one step per ranged *part*
    (``part_index`` of ``num_parts``); elsewhere a step is a whole
    object. ``ready_s`` is the earliest simulated time the read could
    start (the recovering job's clock at restore begin); the fleet
    scheduler uses it to interleave restore parts from every job
    crashed in the same storm. Resuming the generator performs the
    submission — the read-side mirror of
    :class:`~repro.core.writer.WriteStep`.
    """

    key: str
    ready_s: float
    part_index: int = 1
    num_parts: int = 1


@dataclass
class RestoreReport:
    """Outcome of one restore operation."""

    checkpoint_id: str
    chain_ids: list[str]
    bytes_read: int
    chunks_read: int
    rows_restored: int
    started_at_s: float
    finished_at_s: float
    #: Table-global rows contained in the *target* checkpoint, keyed by
    #: table id — used to rebuild the modified-row trackers.
    target_rows_by_table: dict[int, np.ndarray] = field(
        default_factory=dict
    )
    #: How many newer resume-plan candidates failed verification before
    #: this restore succeeded (0 = the newest candidate was clean).
    fallback_depth: int = 0
    #: Checkpoint ids of the candidates that failed, newest first.
    failed_chain_ids: tuple[str, ...] = ()
    #: When the *hot* working set was fully restored — dense state plus
    #: every hot chunk of the chain. Under ``order="hot_first"`` this
    #: lands before the cold tail and marks the moment training (or
    #: serving) could process its first batch (CPR-style partial
    #: restore); under the default order it equals ``finished_at_s``.
    first_batch_ready_s: float = 0.0

    @property
    def duration_s(self) -> float:
        return self.finished_at_s - self.started_at_s

    @property
    def time_to_first_batch_s(self) -> float:
        """Elapsed time until the hot set (and dense state) was loaded."""
        return self.first_batch_ready_s - self.started_at_s


class CheckpointRestorer:
    """Reads checkpoints back from the object store into live state."""

    #: Manifest keys the last :meth:`list_manifests` call could not
    #: parse, with the corruption reason (class-level default so
    #: listing-only instances built without ``__init__`` see it too).
    skipped_manifests: dict[str, str] = {}

    def __init__(self, store: ObjectStore, clock: SimClock) -> None:
        self.store = store
        self.clock = clock
        self.skipped_manifests = {}

    # ------------------------------------------------------------------
    # Manifest discovery
    # ------------------------------------------------------------------

    def load_manifest(
        self, job_id: str, checkpoint_id: str
    ) -> CheckpointManifest:
        key = manifest_key(job_id, checkpoint_id)
        if not self.store.exists(key):
            raise CheckpointNotFoundError(
                f"no manifest for checkpoint {checkpoint_id!r} of job "
                f"{job_id!r}"
            )
        return CheckpointManifest.from_json(self.store.get(key))

    def list_manifests(self, job_id: str) -> dict[str, CheckpointManifest]:
        """All readable stored manifests of a job, keyed by checkpoint id.

        A manifest blob that fails to parse (bit rot, truncation) is
        *skipped and recorded* rather than aborting discovery — one
        corrupt manifest must not hide every valid candidate from the
        resume planner. Skipped keys land in
        :attr:`skipped_manifests` (``key -> reason``), refreshed on
        every call.
        """
        manifests: dict[str, CheckpointManifest] = {}
        skipped: dict[str, str] = {}
        for key in self.store.list_keys(f"{job_id}/"):
            if key.endswith("/manifest.json"):
                try:
                    manifest = CheckpointManifest.from_json(
                        self.store.get(key)
                    )
                except CheckpointCorruptError as exc:
                    skipped[key] = str(exc)
                    continue
                manifests[manifest.checkpoint_id] = manifest
        self.skipped_manifests = skipped
        return manifests

    def _probe_exists(self, key: str) -> bool:
        """Untimed backend HEAD: does the object exist right now?

        Candidate vetting is controller-side metadata work, not a timed
        data-plane request — same idiom as the staged writer's
        overwrite probe and :meth:`ObjectStore.object_size`.
        """
        backend = self.store.backend
        engine = getattr(self.store, "engine", None)
        if engine is None:
            return backend.exists(key)
        return engine.retry_probe(OP_HEAD, lambda: backend.exists(key))

    def _objects_present(self, manifest: CheckpointManifest) -> bool:
        """Whether every chunk/dense object of one link still exists."""
        for shard in manifest.shards:
            for chunk in shard.chunks:
                if not self._probe_exists(chunk.key):
                    return False
        if manifest.dense_key is not None:
            return self._probe_exists(manifest.dense_key)
        return True

    def plan_resume(
        self,
        job_id: str,
        at_time_s: float | None = None,
        policy: CheckpointPolicy | None = None,
    ) -> list[CheckpointManifest]:
        """Ordered restore candidates, newest first.

        A checkpoint qualifies when its write had completed by the
        deadline (``valid_at_s <= at_time``), it is not quarantined, its
        restore chain resolves with no quarantined link, and every
        chunk/dense object of the chain still exists (cheap untimed
        HEAD probes) — a retention-scrubbed or partially-deleted chain
        is rejected here instead of being discovered mid-restore.
        Existence says nothing about *content*: bit-rotted objects are
        only caught by digest/CRC verification during the restore
        itself, which is why callers restore through the plan (see
        :meth:`restore_with_fallback_steps`) rather than trusting the
        head alone.
        """
        deadline = self.clock.now if at_time_s is None else at_time_s
        manifests = self.list_manifests(job_id)
        chain_policy = policy or FullPolicy()
        candidates = sorted(
            (
                m
                for m in manifests.values()
                if m.valid_at_s <= deadline and not m.quarantined
            ),
            key=lambda m: (m.interval_index, m.valid_at_s),
            reverse=True,
        )
        plan: list[CheckpointManifest] = []
        for target in candidates:
            try:
                chain = chain_policy.restore_chain(target, manifests)
            except RestoreChainBrokenError:
                continue
            if any(link.quarantined for link in chain):
                continue
            if all(self._objects_present(link) for link in chain):
                plan.append(target)
        return plan

    def latest_valid(
        self, job_id: str, at_time_s: float | None = None
    ) -> CheckpointManifest | None:
        """Most recent restorable checkpoint as of ``at_time``.

        Validity is ``valid_at_s <= at_time``: a checkpoint still being
        written when the job crashed never became valid and is skipped,
        exactly as a missing manifest would be in the real system.
        Equivalent to the head of :meth:`plan_resume` — quarantined
        checkpoints and chains with missing objects are skipped too.
        """
        plan = self.plan_resume(job_id, at_time_s)
        return plan[0] if plan else None

    # ------------------------------------------------------------------
    # Restore
    # ------------------------------------------------------------------

    def _decode_weights(self, payload: bytes) -> np.ndarray:
        obj = decode_payload(payload)
        if isinstance(obj, QuantizedTensor):
            return dequantize_tensor(obj)
        return obj

    def _decode_accumulator(self, payload: bytes) -> np.ndarray:
        obj = decode_payload(payload)
        if isinstance(obj, QuantizedTensor):
            return dequantize_tensor(obj).reshape(-1)
        return obj.reshape(-1)

    def _staged_read(self, key: str):
        """Generator: announce each GET part of ``key``, then submit it.

        Yields a :class:`ReadStep` *before* every part request —
        resuming performs the submission, the same protocol the staged
        writer uses — and returns ``(bytes, completed_s)`` where
        ``completed_s`` is the read's receipt completion time.
        """
        staged = self.store.stage_get(key)
        while not staged.done:
            yield ReadStep(
                key=key,
                ready_s=staged.next_ready_s,
                part_index=staged.next_part_number,
                num_parts=staged.num_parts,
            )
            staged.submit_next()
        receipt = staged.receipt
        assert receipt is not None
        return staged.data(), receipt.completed_s

    def _decode_chunk(
        self,
        model: DLRM,
        table_id: int,
        chunk,
        blob: bytes,
    ) -> np.ndarray:
        """Digest/CRC-verify and load one chunk payload; returns row ids."""
        if chunk.digest is not None:
            actual = hashlib.sha256(blob).hexdigest()
            if actual != chunk.digest:
                raise CheckpointCorruptError(
                    f"chunk {chunk.key} digest mismatch: stored bytes "
                    f"hash {actual}, manifest records {chunk.digest}"
                )
        try:
            meta, frames = decode_frames(blob)
        except SerializationError as exc:
            raise CheckpointCorruptError(
                f"chunk {chunk.key} failed verification: {exc}"
            ) from exc
        if len(frames) != 3:
            raise CheckpointCorruptError(
                f"chunk {chunk.key} has {len(frames)} frames, "
                "expected rows/weights/accumulator"
            )
        rows = decode_array(frames[0].payload).astype(np.int64)
        if rows.size == 0 and int(meta.get("row_base", -1)) >= 0:
            # Full-checkpoint chunk: contiguous range, ids
            # reconstructed from (row_base, row_count).
            rows = np.arange(
                int(meta["row_base"]),
                int(meta["row_base"]) + int(meta["row_count"]),
                dtype=np.int64,
            )
        weights = self._decode_weights(frames[1].payload)
        accum = self._decode_accumulator(frames[2].payload)
        if rows.shape[0] != chunk.row_count:
            raise CheckpointCorruptError(
                f"chunk {chunk.key} declares {chunk.row_count} "
                f"rows, payload holds {rows.shape[0]}"
            )
        model.load_table_rows(table_id, rows, weights, accum)
        return rows

    @staticmethod
    def _chunk_plan(
        manifest: CheckpointManifest,
        order: str,
        hot_rows: dict[int, np.ndarray] | None,
    ) -> list[tuple[object, object, bool]]:
        """Ordered ``(shard_record, chunk, is_hot)`` reads of one link.

        Hotness is decided without touching payloads: a *full* link's
        chunks cover contiguous row ranges recoverable from cumulative
        ``row_count`` (the writer chunks each shard's rows in order), so
        a chunk is hot when its range intersects the tracker-supplied
        hot set. An *incremental* link's chunks hold exactly the rows
        the tracker marked modified since the base — the definition of
        the hot working set — so every incremental chunk is hot. Under
        ``order="hot_first"`` hot chunks sort first (densest hot-row
        overlap leading, stable otherwise); the manifest order is kept
        bit-identical for the default.
        """
        entries: list[tuple[int, object, object, bool]] = []
        for shard_record in manifest.shards:
            cursor = shard_record.row_start
            for chunk in shard_record.chunks:
                if manifest.kind == KIND_INCREMENTAL:
                    overlap = int(chunk.row_count)
                    is_hot = True
                else:
                    table_hot = (hot_rows or {}).get(
                        shard_record.table_id
                    )
                    if table_hot is None or len(table_hot) == 0:
                        overlap = 0
                    else:
                        hot = np.asarray(table_hot)
                        overlap = int(
                            np.count_nonzero(
                                (hot >= cursor)
                                & (hot < cursor + chunk.row_count)
                            )
                        )
                    is_hot = overlap > 0
                entries.append((overlap, shard_record, chunk, is_hot))
                cursor += chunk.row_count
        if order == ORDER_HOT_FIRST:
            entries.sort(key=lambda e: -e[0])  # stable: ties keep layout
        return [(s, c, h) for _, s, c, h in entries]

    def _apply_manifest_steps(
        self,
        model: DLRM,
        manifest: CheckpointManifest,
        order: str = ORDER_MANIFEST,
        hot_rows: dict[int, np.ndarray] | None = None,
        on_chunk=None,
    ):
        """Generator: load one manifest's chunks through staged reads.

        ``on_chunk(manifest, shard_record, chunk, rows)`` fires after
        each chunk decodes — the serving publisher uses it to maintain
        its row locator. Returns (bytes_read, chunks_read,
        rows_restored, rows_by_table, last_completed_s,
        hot_completed_s) where ``hot_completed_s`` is when the last
        *hot* chunk landed (the manifest start time if none were hot).
        """
        bytes_read = 0
        chunks_read = 0
        rows_restored = 0
        last_completed = self.clock.now
        hot_completed = self.clock.now
        rows_by_table: dict[int, list[np.ndarray]] = {}
        for shard_record, chunk, is_hot in self._chunk_plan(
            manifest, order, hot_rows
        ):
            blob, completed = yield from self._staged_read(chunk.key)
            bytes_read += len(blob)
            last_completed = max(last_completed, completed)
            if is_hot:
                hot_completed = max(hot_completed, completed)
            rows = self._decode_chunk(
                model, shard_record.table_id, chunk, blob
            )
            if on_chunk is not None:
                on_chunk(manifest, shard_record, chunk, rows)
            rows_by_table.setdefault(
                shard_record.table_id, []
            ).append(rows)
            chunks_read += 1
            rows_restored += int(rows.shape[0])
        return (
            bytes_read,
            chunks_read,
            rows_restored,
            rows_by_table,
            last_completed,
            hot_completed,
        )

    def _apply_manifest(
        self,
        model: DLRM,
        manifest: CheckpointManifest,
        on_chunk=None,
    ) -> tuple[int, int, int, dict[int, list[np.ndarray]]]:
        """Load one manifest's chunks into the model (immediate drain).

        Returns (bytes_read, chunks_read, rows_restored, rows_by_table).
        """
        b, c, r, rows_by_table, _, _ = _drain(
            self._apply_manifest_steps(model, manifest, on_chunk=on_chunk)
        )
        return b, c, r, rows_by_table

    def _apply_dense_steps(self, model: DLRM, manifest: CheckpointManifest):
        """Generator: load the dense state through a staged read.

        Returns (bytes_read, completed_s).
        """
        if manifest.dense_key is None:
            raise CheckpointCorruptError(
                f"checkpoint {manifest.checkpoint_id} has no dense state"
            )
        blob, completed = yield from self._staged_read(manifest.dense_key)
        if manifest.dense_digest is not None:
            actual = hashlib.sha256(blob).hexdigest()
            if actual != manifest.dense_digest:
                raise CheckpointCorruptError(
                    f"dense state {manifest.dense_key} of "
                    f"{manifest.checkpoint_id} digest mismatch: stored "
                    f"bytes hash {actual}, manifest records "
                    f"{manifest.dense_digest}"
                )
        try:
            _, frames = decode_frames(blob)
            state: dict[str, np.ndarray] = {}
            for frame in frames:
                inner_meta, inner = decode_frames(frame.payload)
                state[inner_meta["name"]] = decode_array(inner[0].payload)
        except SerializationError as exc:
            raise CheckpointCorruptError(
                f"dense state of {manifest.checkpoint_id} is corrupt: "
                f"{exc}"
            ) from exc
        model.load_dense_state(state)
        return len(blob), completed

    def _apply_dense(self, model: DLRM, manifest: CheckpointManifest):
        blob_len, _ = _drain(self._apply_dense_steps(model, manifest))
        return blob_len

    def restore_steps(
        self,
        model: DLRM,
        target: CheckpointManifest,
        manifests: dict[str, CheckpointManifest],
        reader: ReaderMaster | None = None,
        policy: CheckpointPolicy | None = None,
        order: str = ORDER_MANIFEST,
        hot_rows: dict[int, np.ndarray] | None = None,
        on_chunk=None,
    ):
        """Generator: restore ``target`` through staged, announced reads.

        Yields a :class:`ReadStep` before every GET part of the chain
        (oldest link first, chunk by chunk, dense state last); resuming
        the generator submits the announced part. Returns the
        :class:`RestoreReport` via ``StopIteration.value``, with
        ``finished_at_s`` taken from the restore's *own* receipt
        completion times — correct even when other jobs' transfers land
        on the shared link between this restore's parts.

        ``order="hot_first"`` is the CPR-style priority restore: the
        dense state reads *first*, and within each chain link the
        chunks overlapping ``hot_rows`` (table id -> table-global row
        ids, typically tracker stats) lead the cold tail — safe because
        chunks within one link are disjoint, and the oldest-first link
        order still guarantees later increments overwrite earlier rows.
        The report's ``first_batch_ready_s`` then records when the hot
        set had fully landed.
        """
        if order not in RESTORE_ORDERS:
            raise CheckpointError(
                f"unknown restore order {order!r}; valid: {RESTORE_ORDERS}"
            )
        chain_policy = policy or FullPolicy()
        chain = chain_policy.restore_chain(target, manifests)
        started = self.clock.now
        bytes_read = 0
        chunks_read = 0
        rows_restored = 0
        finished = started
        hot_finished = started
        dense_completed = started
        target_rows: dict[int, np.ndarray] = {}
        if order == ORDER_HOT_FIRST:
            # Dense state up front: the MLPs are needed for any batch
            # at all, and they are <1% of the model.
            dense_bytes, dense_completed = yield from (
                self._apply_dense_steps(model, target)
            )
            bytes_read += dense_bytes
            finished = max(finished, dense_completed)
        for manifest in chain:  # oldest first: increments overwrite base
            b, c, r, rows_by_table, completed, hot_completed = (
                yield from self._apply_manifest_steps(
                    model,
                    manifest,
                    order=order,
                    hot_rows=hot_rows,
                    on_chunk=on_chunk,
                )
            )
            bytes_read += b
            chunks_read += c
            rows_restored += r
            finished = max(finished, completed)
            hot_finished = max(hot_finished, hot_completed)
            if manifest.checkpoint_id == target.checkpoint_id:
                target_rows = {
                    table_id: np.unique(np.concatenate(parts))
                    for table_id, parts in rows_by_table.items()
                }
        if order != ORDER_HOT_FIRST:
            # Dense state: only the target's copy matters (stored whole).
            dense_bytes, dense_completed = yield from (
                self._apply_dense_steps(model, target)
            )
            bytes_read += dense_bytes
            finished = max(finished, dense_completed)

        progress = target.trainer_progress
        model.batches_trained = int(progress.get("batches_trained", 0))
        model.samples_trained = int(progress.get("samples_trained", 0))
        if reader is not None:
            reader.restore(ReaderState.from_dict(target.reader_state))

        finished = max(finished, self.clock.now)
        first_batch_ready = (
            max(dense_completed, hot_finished)
            if order == ORDER_HOT_FIRST
            else finished
        )
        return RestoreReport(
            checkpoint_id=target.checkpoint_id,
            chain_ids=[m.checkpoint_id for m in chain],
            bytes_read=bytes_read,
            chunks_read=chunks_read,
            rows_restored=rows_restored,
            started_at_s=started,
            finished_at_s=finished,
            target_rows_by_table=target_rows,
            first_batch_ready_s=min(first_batch_ready, finished),
        )

    def restore_with_fallback_steps(
        self,
        model: DLRM,
        plan: list[CheckpointManifest],
        manifests: dict[str, CheckpointManifest],
        reader: ReaderMaster | None = None,
        policy: CheckpointPolicy | None = None,
        order: str = ORDER_MANIFEST,
        hot_rows: dict[int, np.ndarray] | None = None,
    ):
        """Generator: restore *through* corruption down a resume plan.

        Tries each candidate of ``plan`` (newest first, see
        :meth:`plan_resume`) with :meth:`restore_steps`; a candidate
        whose chain turns out corrupt, broken, or missing objects
        mid-read is abandoned and the next one tried — safe because
        every chain starts at a full checkpoint, which overwrites any
        rows a failed attempt partially loaded, and the dense state is
        reloaded whole. The bytes already read for a failed candidate
        stay on the simulated link: falling back costs real read
        traffic, exactly as it would in production. Returns the winning
        :class:`RestoreReport` with ``fallback_depth`` set; raises
        :class:`CheckpointNotFoundError` when every candidate fails.
        """
        failed: list[str] = []
        for depth, target in enumerate(plan):
            try:
                report = yield from self.restore_steps(
                    model,
                    target,
                    manifests,
                    reader=reader,
                    policy=policy,
                    order=order,
                    hot_rows=hot_rows,
                )
            except (
                CheckpointCorruptError,
                RestoreChainBrokenError,
                ObjectNotFoundError,
            ):
                failed.append(target.checkpoint_id)
                continue
            report.fallback_depth = depth
            report.failed_chain_ids = tuple(failed)
            return report
        raise CheckpointNotFoundError(
            "no restorable checkpoint: every resume-plan candidate "
            f"failed verification ({', '.join(failed) or 'empty plan'})"
        )

    def restore(
        self,
        model: DLRM,
        target: CheckpointManifest,
        manifests: dict[str, CheckpointManifest],
        reader: ReaderMaster | None = None,
        policy: CheckpointPolicy | None = None,
        order: str = ORDER_MANIFEST,
        hot_rows: dict[int, np.ndarray] | None = None,
        on_chunk=None,
    ) -> RestoreReport:
        """Restore model (and optionally reader) from ``target``.

        ``manifests`` must contain every checkpoint the chain needs;
        ``policy`` defaults to chain resolution via base-id links, which
        is correct for all shipped policies. Drains the staged-read
        generator immediately — timing-identical to uninterrupted
        whole-chain reads.
        """
        return _drain(
            self.restore_steps(
                model,
                target,
                manifests,
                reader=reader,
                policy=policy,
                order=order,
                hot_rows=hot_rows,
                on_chunk=on_chunk,
            )
        )

    def apply_single_steps(
        self,
        model: DLRM,
        manifest: CheckpointManifest,
        on_chunk=None,
    ):
        """Generator: apply one manifest through staged, announced reads.

        The staged mirror of :meth:`apply_single` — yields a
        :class:`ReadStep` before every GET part so a driver can
        interleave the apply with concurrent link traffic. Returns
        ``(bytes_read, completed_s)``.
        """
        bytes_read, _, _, _, completed, _ = yield from (
            self._apply_manifest_steps(model, manifest, on_chunk=on_chunk)
        )
        dense_bytes, dense_completed = yield from self._apply_dense_steps(
            model, manifest
        )
        return bytes_read + dense_bytes, max(completed, dense_completed)

    def apply_single(
        self,
        model: DLRM,
        manifest: CheckpointManifest,
        on_chunk=None,
    ) -> int:
        """Apply one manifest's rows + dense state onto a live model.

        This is the *online training* path (paper sections 1, 5.1):
        consecutive incremental checkpoints are "directly applied to an
        already-trained model in inference to improve its freshness" —
        no chain walk, the increment lands on whatever the replica
        already holds. Returns bytes read.
        """
        bytes_read, _ = _drain(
            self.apply_single_steps(model, manifest, on_chunk=on_chunk)
        )
        return bytes_read

    def restore_for_transfer(
        self,
        model: DLRM,
        target: CheckpointManifest,
        manifests: dict[str, CheckpointManifest],
        policy: CheckpointPolicy | None = None,
    ) -> RestoreReport:
        """Seed a *new* job from a checkpoint (transfer learning).

        Paper section 4.1: checkpoints used for transfer learning "do
        not require the reader state" — the new job trains a different
        dataset toward a different goal. Model weights load through the
        normal chain, but progress counters reset to zero and the
        reader is untouched.
        """
        report = self.restore(
            model, target, manifests, reader=None, policy=policy
        )
        model.batches_trained = 0
        model.samples_trained = 0
        return report

    @staticmethod
    def chain_includes_increment(chain: list[CheckpointManifest]) -> bool:
        """Whether any link in the chain is incremental (for tests)."""
        return any(m.kind == KIND_INCREMENTAL for m in chain)
