"""Checkpoint restore: chain resolution, de-quantization, state load.

Restoring follows the policy's chain (paper section 5.1): a full
checkpoint restores alone; a one-shot/intermittent increment needs its
baseline first; a consecutive increment needs the entire chain back to
the last full checkpoint, applied oldest-first so later increments
overwrite earlier rows.

Every chunk is CRC-verified by the frame reader; corruption surfaces as
:class:`CheckpointCorruptError` rather than silently wrong weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.reader import ReaderMaster
from ..data.state import ReaderState
from ..distributed.clock import SimClock
from ..errors import (
    CheckpointCorruptError,
    CheckpointNotFoundError,
    SerializationError,
)
from ..model.dlrm import DLRM
from ..quant.base import QuantizedTensor
from ..quant.registry import dequantize_tensor
from ..serialize.codec import decode_array, decode_payload
from ..serialize.format import decode_frames
from ..storage.object_store import ObjectStore
from .manifest import (
    KIND_INCREMENTAL,
    CheckpointManifest,
    manifest_key,
)
from .policies import CheckpointPolicy, FullPolicy


@dataclass
class RestoreReport:
    """Outcome of one restore operation."""

    checkpoint_id: str
    chain_ids: list[str]
    bytes_read: int
    chunks_read: int
    rows_restored: int
    started_at_s: float
    finished_at_s: float
    #: Table-global rows contained in the *target* checkpoint, keyed by
    #: table id — used to rebuild the modified-row trackers.
    target_rows_by_table: dict[int, np.ndarray] = field(
        default_factory=dict
    )

    @property
    def duration_s(self) -> float:
        return self.finished_at_s - self.started_at_s


class CheckpointRestorer:
    """Reads checkpoints back from the object store into live state."""

    def __init__(self, store: ObjectStore, clock: SimClock) -> None:
        self.store = store
        self.clock = clock

    # ------------------------------------------------------------------
    # Manifest discovery
    # ------------------------------------------------------------------

    def load_manifest(
        self, job_id: str, checkpoint_id: str
    ) -> CheckpointManifest:
        key = manifest_key(job_id, checkpoint_id)
        if not self.store.exists(key):
            raise CheckpointNotFoundError(
                f"no manifest for checkpoint {checkpoint_id!r} of job "
                f"{job_id!r}"
            )
        return CheckpointManifest.from_json(self.store.get(key))

    def list_manifests(self, job_id: str) -> dict[str, CheckpointManifest]:
        """All stored manifests of a job, keyed by checkpoint id."""
        manifests: dict[str, CheckpointManifest] = {}
        for key in self.store.list_keys(f"{job_id}/"):
            if key.endswith("/manifest.json"):
                manifest = CheckpointManifest.from_json(self.store.get(key))
                manifests[manifest.checkpoint_id] = manifest
        return manifests

    def latest_valid(
        self, job_id: str, at_time_s: float | None = None
    ) -> CheckpointManifest | None:
        """Most recent checkpoint whose write had completed by ``at_time``.

        Validity is ``valid_at_s <= at_time``: a checkpoint still being
        written when the job crashed never became valid and is skipped,
        exactly as a missing manifest would be in the real system.
        """
        deadline = self.clock.now if at_time_s is None else at_time_s
        candidates = [
            m
            for m in self.list_manifests(job_id).values()
            if m.valid_at_s <= deadline
        ]
        if not candidates:
            return None
        return max(
            candidates, key=lambda m: (m.interval_index, m.valid_at_s)
        )

    # ------------------------------------------------------------------
    # Restore
    # ------------------------------------------------------------------

    def _decode_weights(self, payload: bytes) -> np.ndarray:
        obj = decode_payload(payload)
        if isinstance(obj, QuantizedTensor):
            return dequantize_tensor(obj)
        return obj

    def _decode_accumulator(self, payload: bytes) -> np.ndarray:
        obj = decode_payload(payload)
        if isinstance(obj, QuantizedTensor):
            return dequantize_tensor(obj).reshape(-1)
        return obj.reshape(-1)

    def _apply_manifest(
        self, model: DLRM, manifest: CheckpointManifest
    ) -> tuple[int, int, int, dict[int, list[np.ndarray]]]:
        """Load one manifest's chunks into the model.

        Returns (bytes_read, chunks_read, rows_restored, rows_by_table).
        """
        bytes_read = 0
        chunks_read = 0
        rows_restored = 0
        rows_by_table: dict[int, list[np.ndarray]] = {}
        for shard_record in manifest.shards:
            for chunk in shard_record.chunks:
                blob = self.store.get(chunk.key)
                bytes_read += len(blob)
                try:
                    meta, frames = decode_frames(blob)
                except SerializationError as exc:
                    raise CheckpointCorruptError(
                        f"chunk {chunk.key} failed verification: {exc}"
                    ) from exc
                if len(frames) != 3:
                    raise CheckpointCorruptError(
                        f"chunk {chunk.key} has {len(frames)} frames, "
                        "expected rows/weights/accumulator"
                    )
                rows = decode_array(frames[0].payload).astype(np.int64)
                if rows.size == 0 and int(meta.get("row_base", -1)) >= 0:
                    # Full-checkpoint chunk: contiguous range, ids
                    # reconstructed from (row_base, row_count).
                    rows = np.arange(
                        int(meta["row_base"]),
                        int(meta["row_base"]) + int(meta["row_count"]),
                        dtype=np.int64,
                    )
                weights = self._decode_weights(frames[1].payload)
                accum = self._decode_accumulator(frames[2].payload)
                if rows.shape[0] != chunk.row_count:
                    raise CheckpointCorruptError(
                        f"chunk {chunk.key} declares {chunk.row_count} "
                        f"rows, payload holds {rows.shape[0]}"
                    )
                model.load_table_rows(
                    shard_record.table_id, rows, weights, accum
                )
                rows_by_table.setdefault(
                    shard_record.table_id, []
                ).append(rows)
                chunks_read += 1
                rows_restored += int(rows.shape[0])
        return bytes_read, chunks_read, rows_restored, rows_by_table

    def _apply_dense(self, model: DLRM, manifest: CheckpointManifest):
        if manifest.dense_key is None:
            raise CheckpointCorruptError(
                f"checkpoint {manifest.checkpoint_id} has no dense state"
            )
        blob = self.store.get(manifest.dense_key)
        try:
            _, frames = decode_frames(blob)
            state: dict[str, np.ndarray] = {}
            for frame in frames:
                inner_meta, inner = decode_frames(frame.payload)
                state[inner_meta["name"]] = decode_array(inner[0].payload)
        except SerializationError as exc:
            raise CheckpointCorruptError(
                f"dense state of {manifest.checkpoint_id} is corrupt: "
                f"{exc}"
            ) from exc
        model.load_dense_state(state)
        return len(blob)

    def restore(
        self,
        model: DLRM,
        target: CheckpointManifest,
        manifests: dict[str, CheckpointManifest],
        reader: ReaderMaster | None = None,
        policy: CheckpointPolicy | None = None,
    ) -> RestoreReport:
        """Restore model (and optionally reader) from ``target``.

        ``manifests`` must contain every checkpoint the chain needs;
        ``policy`` defaults to chain resolution via base-id links, which
        is correct for all shipped policies.
        """
        chain_policy = policy or FullPolicy()
        chain = chain_policy.restore_chain(target, manifests)
        started = self.clock.now
        bytes_read = 0
        chunks_read = 0
        rows_restored = 0
        target_rows: dict[int, np.ndarray] = {}
        for manifest in chain:  # oldest first: increments overwrite base
            b, c, r, rows_by_table = self._apply_manifest(model, manifest)
            bytes_read += b
            chunks_read += c
            rows_restored += r
            if manifest.checkpoint_id == target.checkpoint_id:
                target_rows = {
                    table_id: np.unique(np.concatenate(parts))
                    for table_id, parts in rows_by_table.items()
                }
        # Dense state: only the target's copy matters (stored whole).
        bytes_read += self._apply_dense(model, target)

        progress = target.trainer_progress
        model.batches_trained = int(progress.get("batches_trained", 0))
        model.samples_trained = int(progress.get("samples_trained", 0))
        if reader is not None:
            reader.restore(ReaderState.from_dict(target.reader_state))

        finished = max(self.clock.now, self.store.timeline.free_at)
        return RestoreReport(
            checkpoint_id=target.checkpoint_id,
            chain_ids=[m.checkpoint_id for m in chain],
            bytes_read=bytes_read,
            chunks_read=chunks_read,
            rows_restored=rows_restored,
            started_at_s=started,
            finished_at_s=finished,
            target_rows_by_table=target_rows,
        )

    def apply_single(
        self, model: DLRM, manifest: CheckpointManifest
    ) -> int:
        """Apply one manifest's rows + dense state onto a live model.

        This is the *online training* path (paper sections 1, 5.1):
        consecutive incremental checkpoints are "directly applied to an
        already-trained model in inference to improve its freshness" —
        no chain walk, the increment lands on whatever the replica
        already holds. Returns bytes read.
        """
        bytes_read, _, _, _ = self._apply_manifest(model, manifest)
        bytes_read += self._apply_dense(model, manifest)
        return bytes_read

    def restore_for_transfer(
        self,
        model: DLRM,
        target: CheckpointManifest,
        manifests: dict[str, CheckpointManifest],
        policy: CheckpointPolicy | None = None,
    ) -> RestoreReport:
        """Seed a *new* job from a checkpoint (transfer learning).

        Paper section 4.1: checkpoints used for transfer learning "do
        not require the reader state" — the new job trains a different
        dataset toward a different goal. Model weights load through the
        normal chain, but progress counters reset to zero and the
        reader is untouched.
        """
        report = self.restore(
            model, target, manifests, reader=None, policy=policy
        )
        model.batches_trained = 0
        model.samples_trained = 0
        return report

    @staticmethod
    def chain_includes_increment(chain: list[CheckpointManifest]) -> bool:
        """Whether any link in the chain is incremental (for tests)."""
        return any(m.kind == KIND_INCREMENTAL for m in chain)
