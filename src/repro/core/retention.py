"""Checkpoint retention: delete old checkpoints without breaking chains.

"At that stage, an older checkpoint may be deleted by the controller
(based on the system configuration). Multiple checkpoints can be stored
depending on the needs and use cases." (paper section 4.4)

Retention keeps the last ``keep_last`` checkpoints *and everything
their restore chains reference*: deleting a one-shot baseline while an
increment that needs it is retained would render that increment
useless, so baselines are protected for as long as any kept increment
points at them.

The *storm-aware* mode (``max_chain_length``) additionally biases
toward keeping one **full** checkpoint hot per job: when one more
increment would push the restore chain past the bound, the manager
asks the controller to refresh the baseline (take a full) instead of
extending the chain. A correlated restore storm re-reads every
affected job's whole chain through the shared link, so bounding chain
depth trades a little extra write traffic for a large cut in storm
read traffic — and lets the superseded long chain be scrubbed once the
fresh full lands. The fleet enables it via
``FleetConfig.retention_mode="storm_aware"`` when a
``storm_domain`` is armed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CheckpointError
from ..storage.object_store import ObjectStore
from .manifest import CheckpointManifest, checkpoint_prefix
from .policies import CheckpointPolicy


@dataclass(frozen=True)
class RetentionReport:
    """What one retention pass deleted."""

    deleted_ids: tuple[str, ...]
    deleted_objects: int
    freed_logical_bytes: int


class RetentionManager:
    """Deletes unprotected checkpoints beyond the retention window.

    ``max_chain_length`` arms the storm-aware mode: a bound on how many
    links the newest checkpoint's restore chain may carry before the
    manager requests a baseline refresh (None = unbounded, the
    chain-depth behaviour every policy had before storms were a
    concern).
    """

    def __init__(
        self,
        store: ObjectStore,
        keep_last: int,
        max_chain_length: int | None = None,
    ) -> None:
        if keep_last < 1:
            raise CheckpointError("keep_last must be >= 1")
        if max_chain_length is not None and max_chain_length < 1:
            raise CheckpointError("max_chain_length must be >= 1")
        self.store = store
        self.keep_last = keep_last
        self.max_chain_length = max_chain_length

    @property
    def storm_aware(self) -> bool:
        return self.max_chain_length is not None

    def wants_baseline_refresh(
        self,
        manifests: dict[str, CheckpointManifest],
        policy: CheckpointPolicy,
        base_id: str | None,
    ) -> bool:
        """Whether the next checkpoint should be forced full.

        ``base_id`` is the checkpoint the *next increment* would chain
        on (the controller's prospective base). True when storm-aware
        mode is on and that increment's restore chain — its base's
        chain plus itself — would exceed ``max_chain_length``, so the
        controller refreshes the baseline instead of extending. The
        test is prospective on purpose: a one-shot/intermittent
        increment always chains directly on the full baseline (chain
        length 2 regardless of history), so only consecutive-style
        policies, whose chains actually grow, ever trigger a refresh
        at bounds >= 2. The refreshed full supersedes the old chain,
        which the next :meth:`enforce` pass scrubs once ``keep_last``
        newer checkpoints cover it.
        """
        if self.max_chain_length is None:
            return False
        if base_id is None or base_id not in manifests:
            return False
        chain = policy.restore_chain(manifests[base_id], manifests)
        return len(chain) + 1 > self.max_chain_length

    def enforce(
        self,
        manifests: dict[str, CheckpointManifest],
        policy: CheckpointPolicy,
        job_id: str,
        now_s: float | None = None,
    ) -> RetentionReport:
        """Delete checkpoints not needed by the newest ``keep_last``.

        Only checkpoints already *valid* at ``now_s`` count toward the
        retention window, and in-flight (not-yet-valid) checkpoints are
        always protected — deleting the old checkpoint before the new
        one's last byte lands would leave a window with nothing to
        restore from (the paper deletes "at that stage", i.e. after the
        controller declares the new checkpoint valid, section 4.4).
        Quarantined checkpoints never occupy a keep slot — a scan
        already proved them unrestorable, so retaining them would
        shrink the window of checkpoints that can actually restore.
        They remain deletable like any other superseded checkpoint
        (still protected if a kept checkpoint's chain references them,
        via ``protected_ids``).

        Mutates ``manifests`` (removes deleted entries) and the store.
        """
        ordered = sorted(
            manifests.values(),
            key=lambda m: (m.interval_index, m.valid_at_s),
        )
        if now_s is None:
            valid = [m for m in ordered if not m.quarantined]
            in_flight: list[CheckpointManifest] = []
        else:
            valid = [
                m
                for m in ordered
                if m.valid_at_s <= now_s and not m.quarantined
            ]
            in_flight = [m for m in ordered if m.valid_at_s > now_s]
        keep = valid[-self.keep_last :] + in_flight
        protected = policy.protected_ids(keep, manifests)
        deletable = [
            m for m in ordered if m.checkpoint_id not in protected
        ]
        deleted_ids: list[str] = []
        deleted_objects = 0
        freed = 0
        for manifest in deletable:
            # One batch prefix delete per checkpoint: a single LIST
            # plus N DELETE requests under the store's cost model,
            # rather than N client-side list+delete round trips.
            receipt = self.store.delete_prefix(
                checkpoint_prefix(job_id, manifest.checkpoint_id)
            )
            freed += receipt.freed_logical_bytes
            deleted_objects += receipt.num_objects
            del manifests[manifest.checkpoint_id]
            deleted_ids.append(manifest.checkpoint_id)
        return RetentionReport(
            deleted_ids=tuple(deleted_ids),
            deleted_objects=deleted_objects,
            freed_logical_bytes=freed,
        )
