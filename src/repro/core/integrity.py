"""End-to-end checkpoint integrity: scan, verify, quarantine.

The write path records a sha256 digest for every stored object (chunk
digests in :class:`~repro.core.manifest.ChunkRecord`, the dense blob's
in :class:`~repro.core.manifest.CheckpointManifest`); the restore path
re-hashes everything it reads. This module is the *operator plane* on
top of those digests: :func:`scan_job` walks a job's stored
checkpoints, classifies every bad object (missing, truncated,
bit-rotted, undecodable), and **quarantines** checkpoints that can no
longer restore by rewriting their manifest with ``quarantined: true``
— a marker the resume planner
(:meth:`~repro.core.restore.CheckpointRestorer.plan_resume`) and
retention (:meth:`~repro.core.retention.RetentionManager.enforce`)
both respect, and which survives process restarts because it lives in
the stored manifest itself.

Scans are untimed: like the CRC scrubber in
:mod:`repro.tools.inspect`, they read through the raw backend rather
than the request-timed store — an operator tool must not perturb the
simulated storage timeline it is inspecting.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

from ..errors import ObjectNotFoundError, SerializationError
from ..serialize.format import decode_frames
from ..storage.object_store import ObjectStore
from ..storage.requests import OP_GET, OP_HEAD
from .manifest import CheckpointManifest, manifest_key


def sha256_hex(data: bytes) -> str:
    """The digest format recorded in manifests: sha256, lowercase hex."""
    return hashlib.sha256(data).hexdigest()


#: Issue reasons, in the order checks run per object.
REASON_MISSING = "missing"
REASON_TRUNCATED = "truncated"
REASON_DIGEST_MISMATCH = "digest-mismatch"
REASON_DECODE_FAILED = "decode-failed"
REASON_MANIFEST_CORRUPT = "manifest-corrupt"


@dataclass(frozen=True)
class ObjectIssue:
    """One bad stored object found by a scan."""

    key: str
    checkpoint_id: str
    reason: str
    detail: str = ""


@dataclass
class IntegrityReport:
    """Outcome of scanning one job's stored checkpoints."""

    job_id: str
    checkpoints_scanned: int = 0
    objects_scanned: int = 0
    #: Bytes of objects that passed every check.
    bytes_verified: int = 0
    issues: list[ObjectIssue] = field(default_factory=list)
    #: Checkpoints with at least one bad object, found this scan.
    corrupt_checkpoint_ids: list[str] = field(default_factory=list)
    #: Checkpoints this scan newly quarantined.
    quarantined_ids: list[str] = field(default_factory=list)
    #: Checkpoints a previous scan had already quarantined.
    already_quarantined_ids: list[str] = field(default_factory=list)
    #: Checkpoint ids with stored objects but no manifest — a mid-write
    #: crash; the manifest-last invariant already hides them from
    #: restores, so they are reported but not quarantined.
    torn_checkpoint_ids: list[str] = field(default_factory=list)
    #: Manifest keys that failed to parse, with the reason. Discovery
    #: skip-and-records these, so they need no quarantine marker.
    unreadable_manifests: dict[str, str] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.issues and not self.torn_checkpoint_ids


def _probe(store: ObjectStore, op: str, call):
    """Run an untimed backend call through the engine's retry loop."""
    engine = getattr(store, "engine", None)
    if engine is None:
        return call()
    return engine.retry_probe(op, call)


def verify_checkpoint(
    store: ObjectStore,
    manifest: CheckpointManifest,
    report: IntegrityReport | None = None,
) -> list[ObjectIssue]:
    """Verify every stored object of one checkpoint.

    Per object: existence, recorded-size match (truncation), sha256
    digest match when the manifest carries one, and — for pre-digest
    manifests — CRC frame decoding as the fallback check. Updates
    ``report`` counters when given; returns the issues found.
    """
    issues: list[ObjectIssue] = []
    checks: list[tuple[str, int, str | None]] = [
        (chunk.key, chunk.logical_bytes, chunk.digest)
        for shard in manifest.shards
        for chunk in shard.chunks
    ]
    if manifest.dense_key is not None:
        checks.append(
            (manifest.dense_key, manifest.dense_bytes, manifest.dense_digest)
        )
    for key, expected_bytes, digest in checks:
        if report is not None:
            report.objects_scanned += 1
        try:
            blob = _probe(store, OP_GET, lambda k=key: store.backend.read(k))
        except ObjectNotFoundError:
            issues.append(
                ObjectIssue(key, manifest.checkpoint_id, REASON_MISSING)
            )
            continue
        if len(blob) != expected_bytes:
            issues.append(
                ObjectIssue(
                    key,
                    manifest.checkpoint_id,
                    REASON_TRUNCATED,
                    f"stored {len(blob)} bytes, manifest records "
                    f"{expected_bytes}",
                )
            )
            continue
        if digest is not None:
            actual = sha256_hex(blob)
            if actual != digest:
                issues.append(
                    ObjectIssue(
                        key,
                        manifest.checkpoint_id,
                        REASON_DIGEST_MISMATCH,
                        f"stored bytes hash {actual}, manifest records "
                        f"{digest}",
                    )
                )
                continue
        else:
            try:
                decode_frames(blob)
            except SerializationError as exc:
                issues.append(
                    ObjectIssue(
                        key,
                        manifest.checkpoint_id,
                        REASON_DECODE_FAILED,
                        str(exc),
                    )
                )
                continue
        if report is not None:
            report.bytes_verified += len(blob)
    if report is not None:
        report.issues.extend(issues)
    return issues


def quarantine_checkpoint(
    store: ObjectStore, manifest: CheckpointManifest
) -> CheckpointManifest:
    """Persist the quarantine marker into the stored manifest.

    Rewrites the manifest object with ``quarantined: true`` through the
    raw backend (operator plane, untimed). The marker sticks across
    restarts: any later discovery re-reads the stored JSON and drops
    the checkpoint from resume plans and retention keep slots.
    """
    quarantined = replace(manifest, quarantined=True)
    key = manifest_key(manifest.job_id, manifest.checkpoint_id)
    store.backend.write(key, quarantined.to_json().encode("utf-8"))
    return quarantined


def scan_job(
    store: ObjectStore, job_id: str, quarantine: bool = True
) -> IntegrityReport:
    """Scan one job's stored checkpoints for corruption.

    Walks every checkpoint under ``job_id``: unparseable manifests are
    recorded (discovery already skips them), torn checkpoints (objects
    without a manifest) are listed, and every chunk/dense object of
    each readable manifest is verified per :func:`verify_checkpoint`.
    Checkpoints with bad objects are quarantined unless
    ``quarantine=False`` (report-only mode).
    """
    report = IntegrityReport(job_id=job_id)
    keys = _probe(
        store, OP_HEAD, lambda: store.backend.list_keys(f"{job_id}/")
    )
    manifest_keys = sorted(
        k for k in keys if k.endswith("/manifest.json")
    )
    with_manifest = {k.rsplit("manifest.json", 1)[0] for k in manifest_keys}
    torn: list[str] = []
    for key in keys:
        parts = key.split("/")
        if len(parts) < 3:
            continue
        if f"{parts[0]}/{parts[1]}/" not in with_manifest:
            if parts[1] not in torn:
                torn.append(parts[1])
    report.torn_checkpoint_ids = torn

    for mkey in manifest_keys:
        checkpoint_id = mkey.split("/")[-2]
        blob = _probe(store, OP_GET, lambda k=mkey: store.backend.read(k))
        report.objects_scanned += 1
        try:
            manifest = CheckpointManifest.from_json(blob)
        except Exception as exc:  # CheckpointCorruptError, by contract
            report.unreadable_manifests[mkey] = str(exc)
            report.issues.append(
                ObjectIssue(
                    mkey, checkpoint_id, REASON_MANIFEST_CORRUPT, str(exc)
                )
            )
            continue
        report.bytes_verified += len(blob)
        report.checkpoints_scanned += 1
        if manifest.quarantined:
            report.already_quarantined_ids.append(manifest.checkpoint_id)
            continue
        issues = verify_checkpoint(store, manifest, report)
        if issues:
            report.corrupt_checkpoint_ids.append(manifest.checkpoint_id)
            if quarantine:
                quarantine_checkpoint(store, manifest)
                report.quarantined_ids.append(manifest.checkpoint_id)
    return report


def format_integrity_report(report: IntegrityReport) -> str:
    """Human-readable scan summary (the ``repro scan`` output)."""
    lines = [
        f"job {report.job_id}: scanned "
        f"{report.checkpoints_scanned} checkpoints, "
        f"{report.objects_scanned} objects, "
        f"{report.bytes_verified} bytes verified"
    ]
    for issue in report.issues:
        detail = f" ({issue.detail})" if issue.detail else ""
        lines.append(
            f"  CORRUPT {issue.key}: {issue.reason}{detail}"
        )
    for checkpoint_id in report.torn_checkpoint_ids:
        lines.append(
            f"  TORN {checkpoint_id}: objects present but no manifest"
        )
    for checkpoint_id in report.quarantined_ids:
        lines.append(f"  QUARANTINED {checkpoint_id}")
    for checkpoint_id in report.already_quarantined_ids:
        lines.append(f"  already quarantined: {checkpoint_id}")
    if report.clean:
        lines.append("  clean: no corruption found")
    return "\n".join(lines)
