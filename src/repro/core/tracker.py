"""Modified-embedding-vector tracking (paper section 5.1.1).

Each GPU tracks accesses to its local embedding shards in a bit-vector:
one bit per embedding row, set when the row is looked up (forward-pass
proxy) or updated (exact mode). The bit-vector is the mask that decides
which rows enter the next incremental checkpoint.

The paper tracks in the forward pass "for the sake of simplicity, as
most of the embedding vectors accessed in the forward pass are also
modified during the backward pass" — i.e. the proxy is a superset of the
exact set. Both modes are implemented; the trainer hook picks one.

Memory accounting reports the true bit-vector footprint (one *bit* per
row, "typically less than 0.05%" of the model) even though numpy's bool
arrays spend a byte per element internally.
"""

from __future__ import annotations

import numpy as np

from ..data.batch import Batch
from ..distributed.sharding import Shard, ShardingPlan
from ..errors import SimulationError
from ..model.dlrm import StepResult


class ModifiedRowTracker:
    """Bit-vector over one shard's rows."""

    def __init__(self, shard: Shard) -> None:
        self.shard = shard
        self._mask = np.zeros(shard.rows, dtype=bool)

    def mark_table_rows(self, table_rows: np.ndarray) -> int:
        """Mark rows given in *table-global* indices; returns #newly set.

        Rows outside this shard's range are ignored (they belong to a
        different shard of the same table).
        """
        if table_rows.size == 0:
            return 0
        local = table_rows[
            (table_rows >= self.shard.row_start)
            & (table_rows < self.shard.row_end)
        ] - self.shard.row_start
        if local.size == 0:
            return 0
        before = int(self._mask.sum())
        self._mask[local] = True
        return int(self._mask.sum()) - before

    def mark_all(self) -> None:
        """Mark every row (used when rebuilding state after a restore)."""
        self._mask[:] = True

    def reset(self) -> None:
        """Clear the bit-vector (after a full/consecutive checkpoint)."""
        self._mask[:] = False

    def modified_local_rows(self) -> np.ndarray:
        """Shard-local indices of modified rows, sorted."""
        return np.flatnonzero(self._mask)

    def modified_table_rows(self) -> np.ndarray:
        """Table-global indices of modified rows, sorted."""
        return self.modified_local_rows() + self.shard.row_start

    def mask_copy(self) -> np.ndarray:
        """An immutable-by-convention copy of the mask (for snapshots)."""
        return self._mask.copy()

    def load_mask(self, mask: np.ndarray) -> None:
        """Overwrite the mask (restore path)."""
        if mask.shape != self._mask.shape:
            raise SimulationError(
                f"mask shape {mask.shape} != shard rows "
                f"{self._mask.shape}"
            )
        np.copyto(self._mask, mask)

    @property
    def modified_count(self) -> int:
        return int(self._mask.sum())

    @property
    def fraction_modified(self) -> float:
        return self.modified_count / self.shard.rows

    @property
    def bitvector_bytes(self) -> int:
        """Simulated footprint: one bit per row, rounded up to bytes."""
        return (self.shard.rows + 7) // 8


class TrackerSet:
    """All shard trackers of one training job, plus the trainer hook."""

    def __init__(
        self, plan: ShardingPlan, track_in_forward_pass: bool = True
    ) -> None:
        self.plan = plan
        self.track_in_forward_pass = track_in_forward_pass
        self.trackers: dict[int, ModifiedRowTracker] = {
            shard.shard_id: ModifiedRowTracker(shard)
            for shard in plan.shards
        }
        self._by_table: dict[int, list[ModifiedRowTracker]] = {}
        for tracker in self.trackers.values():
            self._by_table.setdefault(tracker.shard.table_id, []).append(
                tracker
            )

    def step_hook(self, result: StepResult, batch: Batch) -> None:
        """Trainer hook: mark rows touched by one training step.

        Forward-proxy mode marks every looked-up row (what the paper's
        GPU kernel does during AlltoAll); exact mode marks only rows the
        optimizer updated.
        """
        if self.track_in_forward_pass:
            rows_by_table = {
                table_id: np.unique(indices)
                for table_id, indices in enumerate(batch.sparse)
            }
        else:
            rows_by_table = result.touched_rows
        for table_id, rows in rows_by_table.items():
            for tracker in self._by_table.get(table_id, []):
                tracker.mark_table_rows(rows)

    def reset_all(self) -> None:
        for tracker in self.trackers.values():
            tracker.reset()

    def mark_table_rows(self, table_id: int, rows: np.ndarray) -> None:
        """Mark table-global rows across all of a table's shards."""
        for tracker in self._by_table.get(table_id, []):
            tracker.mark_table_rows(rows)

    def mask_copies(self) -> dict[int, np.ndarray]:
        """Snapshot of every shard's mask, keyed by shard id."""
        return {
            shard_id: tracker.mask_copy()
            for shard_id, tracker in self.trackers.items()
        }

    @property
    def total_rows(self) -> int:
        return sum(t.shard.rows for t in self.trackers.values())

    @property
    def modified_rows(self) -> int:
        return sum(t.modified_count for t in self.trackers.values())

    @property
    def fraction_modified(self) -> float:
        """Fraction of all embedding rows marked modified (Figs 5/6)."""
        total = self.total_rows
        return self.modified_rows / total if total else 0.0

    @property
    def bitvector_bytes(self) -> int:
        """Total simulated tracking memory across shards."""
        return sum(t.bitvector_bytes for t in self.trackers.values())
