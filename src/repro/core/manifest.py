"""Checkpoint manifests: the metadata record that *is* validity.

A checkpoint consists of many chunk objects plus one manifest object.
The writer stores the manifest **last**: its presence in the object
store is the validity marker ("when all nodes finish storing their part
of the checkpoint successfully, Check-N-Run's controller will declare a
new valid checkpoint", section 4.4). A crash mid-write leaves chunks
but no manifest, so the restore path never sees a torn checkpoint.

Manifests are JSON — human-inspectable and independent of the binary
chunk format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..errors import CheckpointCorruptError

#: Checkpoint kinds.
KIND_FULL = "full"
KIND_INCREMENTAL = "incremental"


@dataclass(frozen=True)
class ChunkRecord:
    """One stored chunk object of a shard.

    ``digest`` is the sha256 hex of the chunk's stored bytes, computed
    by the writer before the PUT; the restore path re-hashes what it
    read and refuses the chunk on mismatch. ``None`` on manifests
    written before digests existed — those chunks fall back to
    CRC-framing verification only.
    """

    key: str
    row_count: int
    logical_bytes: int
    digest: str | None = None

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "row_count": self.row_count,
            "logical_bytes": self.logical_bytes,
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChunkRecord":
        digest = data.get("digest")
        return cls(
            key=str(data["key"]),
            row_count=int(data["row_count"]),
            logical_bytes=int(data["logical_bytes"]),
            digest=None if digest is None else str(digest),
        )


@dataclass(frozen=True)
class ShardRecord:
    """All chunks of one shard inside one checkpoint."""

    shard_id: int
    table_id: int
    row_start: int
    row_end: int
    chunks: tuple[ChunkRecord, ...]

    def to_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "table_id": self.table_id,
            "row_start": self.row_start,
            "row_end": self.row_end,
            "chunks": [c.to_dict() for c in self.chunks],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardRecord":
        return cls(
            shard_id=int(data["shard_id"]),
            table_id=int(data["table_id"]),
            row_start=int(data["row_start"]),
            row_end=int(data["row_end"]),
            chunks=tuple(
                ChunkRecord.from_dict(c) for c in data["chunks"]
            ),
        )

    @property
    def row_count(self) -> int:
        return sum(c.row_count for c in self.chunks)

    @property
    def logical_bytes(self) -> int:
        return sum(c.logical_bytes for c in self.chunks)


@dataclass(frozen=True)
class CheckpointManifest:
    """Complete description of one stored checkpoint."""

    checkpoint_id: str
    job_id: str
    kind: str  # KIND_FULL or KIND_INCREMENTAL
    base_id: str | None  # full checkpoint this one increments on
    interval_index: int
    policy: str
    quantizer: str
    bit_width: int
    created_at_s: float  # sim time of the snapshot
    valid_at_s: float  # sim time the last byte (manifest) landed
    reader_state: dict = field(default_factory=dict)
    trainer_progress: dict = field(default_factory=dict)
    shards: tuple[ShardRecord, ...] = ()
    dense_key: str | None = None
    dense_bytes: int = 0
    #: sha256 hex of the stored dense blob (None pre-digest).
    dense_digest: str | None = None
    #: Set by the integrity scanner when any of this checkpoint's
    #: objects failed verification. A quarantined checkpoint is never a
    #: restore candidate and does not occupy a retention keep slot.
    quarantined: bool = False

    def __post_init__(self) -> None:
        if self.kind not in (KIND_FULL, KIND_INCREMENTAL):
            raise CheckpointCorruptError(
                f"unknown checkpoint kind {self.kind!r}"
            )
        if self.kind == KIND_INCREMENTAL and self.base_id is None:
            raise CheckpointCorruptError(
                "incremental checkpoints must reference a base"
            )

    @property
    def logical_bytes(self) -> int:
        """Total logical payload bytes (chunks + dense state)."""
        return sum(s.logical_bytes for s in self.shards) + self.dense_bytes

    @property
    def embedding_rows_stored(self) -> int:
        return sum(s.row_count for s in self.shards)

    def to_json(self) -> str:
        return json.dumps(
            {
                "checkpoint_id": self.checkpoint_id,
                "job_id": self.job_id,
                "kind": self.kind,
                "base_id": self.base_id,
                "interval_index": self.interval_index,
                "policy": self.policy,
                "quantizer": self.quantizer,
                "bit_width": self.bit_width,
                "created_at_s": self.created_at_s,
                "valid_at_s": self.valid_at_s,
                "reader_state": self.reader_state,
                "trainer_progress": self.trainer_progress,
                "shards": [s.to_dict() for s in self.shards],
                "dense_key": self.dense_key,
                "dense_bytes": self.dense_bytes,
                "dense_digest": self.dense_digest,
                "quarantined": self.quarantined,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, blob: str | bytes) -> "CheckpointManifest":
        try:
            data = json.loads(blob)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CheckpointCorruptError(
                f"manifest is not valid JSON: {exc}"
            ) from exc
        try:
            # "shards" is required even when empty: a truncated-but-
            # valid-JSON manifest must not parse as an empty checkpoint.
            dense_digest = data.get("dense_digest")
            return cls(
                checkpoint_id=str(data["checkpoint_id"]),
                job_id=str(data["job_id"]),
                kind=str(data["kind"]),
                base_id=data.get("base_id"),
                interval_index=int(data["interval_index"]),
                policy=str(data["policy"]),
                quantizer=str(data["quantizer"]),
                bit_width=int(data["bit_width"]),
                created_at_s=float(data["created_at_s"]),
                valid_at_s=float(data["valid_at_s"]),
                reader_state=dict(data.get("reader_state", {})),
                trainer_progress=dict(data.get("trainer_progress", {})),
                shards=tuple(
                    ShardRecord.from_dict(s) for s in data["shards"]
                ),
                dense_key=data.get("dense_key"),
                dense_bytes=int(data.get("dense_bytes", 0)),
                dense_digest=(
                    None if dense_digest is None else str(dense_digest)
                ),
                quarantined=bool(data.get("quarantined", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointCorruptError(
                f"manifest missing/invalid field: {exc}"
            ) from exc


def manifest_key(job_id: str, checkpoint_id: str) -> str:
    """Object key of a checkpoint's manifest."""
    return f"{job_id}/{checkpoint_id}/manifest.json"


def chunk_key(
    job_id: str, checkpoint_id: str, shard_id: int, chunk_index: int
) -> str:
    """Object key of one shard chunk."""
    return f"{job_id}/{checkpoint_id}/shard{shard_id:05d}/chunk{chunk_index:06d}.bin"


def dense_key(job_id: str, checkpoint_id: str) -> str:
    """Object key of the dense-state blob."""
    return f"{job_id}/{checkpoint_id}/dense.bin"


def checkpoint_prefix(job_id: str, checkpoint_id: str) -> str:
    """Prefix under which every object of a checkpoint lives."""
    return f"{job_id}/{checkpoint_id}/"
