"""Online-training checkpoint publisher (paper sections 1, 5.1).

"Another important use-case of checkpoints is publishing snapshots of
trained models in real time to improve inference accuracy (online
training)": an inference replica keeps serving while training continues,
and each newly valid checkpoint is applied to the replica to keep it
fresh.

:class:`OnlinePublisher` watches a job's manifests in the object store
and applies the ones that became valid since the last poll, in interval
order. The first application walks the full restore chain (the replica
starts empty); later ones apply single increments — the cheap path that
motivates the *consecutive* policy for online-training jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..distributed.clock import SimClock
from ..errors import CheckpointError
from ..model.dlrm import DLRM
from ..storage.object_store import ObjectStore
from .manifest import CheckpointManifest
from .restore import CheckpointRestorer, _drain


@dataclass(frozen=True)
class PublishEvent:
    """One checkpoint applied to the inference replica."""

    checkpoint_id: str
    kind: str
    applied_at_s: float
    bytes_read: int
    #: Age of the published state when applied: apply time minus the
    #: snapshot time — the freshness online training exists to minimise.
    staleness_s: float


@dataclass
class PublisherStats:
    """Aggregate publishing statistics."""

    publishes: int = 0
    bytes_read: int = 0
    events: list[PublishEvent] = field(default_factory=list)

    @property
    def mean_staleness_s(self) -> float:
        if not self.events:
            return 0.0
        return sum(e.staleness_s for e in self.events) / len(self.events)


class OnlinePublisher:
    """Keeps an inference replica fresh from a job's checkpoints."""

    def __init__(
        self,
        store: ObjectStore,
        clock: SimClock,
        replica: DLRM,
        job_id: str,
    ) -> None:
        self.store = store
        self.clock = clock
        self.replica = replica
        self.job_id = job_id
        self.restorer = CheckpointRestorer(store, clock)
        self.stats = PublisherStats()
        self._applied: set[str] = set()
        self._bootstrapped = False

    def pending(self) -> list[CheckpointManifest]:
        """Publishable manifests not yet applied, oldest first.

        Candidates come from the resume planner
        (:meth:`~repro.core.restore.CheckpointRestorer.plan_resume`)
        rather than the raw manifest listing: a quarantined checkpoint,
        a chain with a quarantined link, or a chain missing objects must
        never reach an inference replica, no matter how new it is. A
        later scan that quarantines the bad link re-admits descendants
        only once a fresh full checkpoint re-anchors their chain.
        """
        plan = self.restorer.plan_resume(self.job_id)
        fresh = [
            m for m in plan if m.checkpoint_id not in self._applied
        ]
        return sorted(fresh, key=lambda m: (m.interval_index, m.valid_at_s))

    def poll_steps(self):
        """Generator: apply every newly publishable checkpoint.

        The staged form of :meth:`poll` — yields a
        :class:`~repro.core.restore.ReadStep` before every GET part of
        the applies, so a driver co-simulating other link traffic can
        interleave publish reads at part granularity instead of letting
        one poll hold the link for a whole chain. Returns the list of
        :class:`PublishEvent`\\ s via ``StopIteration.value``.
        """
        events: list[PublishEvent] = []
        manifests = self.restorer.list_manifests(self.job_id)
        for manifest in self.pending():
            if not self._bootstrapped:
                # First publish: the replica holds no trained state, so
                # the full restore chain must be applied.
                report = yield from self.restorer.restore_steps(
                    self.replica,
                    manifest,
                    manifests,
                    on_chunk=self._on_chunk,
                )
                bytes_read = report.bytes_read
                applied_at = report.finished_at_s
                self._applied.update(report.chain_ids)
                self._bootstrapped = True
            else:
                bytes_read, applied_at = yield from (
                    self.restorer.apply_single_steps(
                        self.replica, manifest, on_chunk=self._on_chunk
                    )
                )
                self._applied.add(manifest.checkpoint_id)
            applied_at = max(applied_at, self.clock.now)
            event = PublishEvent(
                checkpoint_id=manifest.checkpoint_id,
                kind=manifest.kind,
                applied_at_s=applied_at,
                bytes_read=bytes_read,
                staleness_s=applied_at - manifest.created_at_s,
            )
            events.append(event)
            self.stats.events.append(event)
            self.stats.publishes += 1
            self.stats.bytes_read += bytes_read
            self._published(manifest, event)
        return events

    def poll(self) -> list[PublishEvent]:
        """Apply every newly publishable checkpoint; returns the events.

        Drains :meth:`poll_steps` immediately — timing-identical to
        uninterrupted whole-chain reads on the shared timeline.
        """
        return _drain(self.poll_steps())

    # -- subclass hooks (the serving plane extends these) --------------

    def _on_chunk(self, manifest, shard_record, chunk, rows) -> None:
        """Called after each applied chunk decodes (row ids included)."""

    def _published(
        self, manifest: CheckpointManifest, event: PublishEvent
    ) -> None:
        """Called once per checkpoint applied to the replica."""

    def require_fresh(self, max_staleness_s: float) -> None:
        """Assert the replica's state is recent enough to serve.

        Raises :class:`CheckpointError` when the newest applied
        checkpoint is older than the given bound — the freshness SLO an
        online-training deployment would monitor.
        """
        if not self.stats.events:
            raise CheckpointError("replica has never been published to")
        newest = self.stats.events[-1]
        age = self.clock.now - (newest.applied_at_s - newest.staleness_s)
        if age > max_staleness_s:
            raise CheckpointError(
                f"replica state is {age:.0f}s old, over the "
                f"{max_staleness_s:.0f}s freshness bound"
            )
