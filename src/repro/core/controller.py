"""The Check-N-Run controller — the system's top-level façade.

Owns the full checkpoint lifecycle of one training job (paper Fig 7):

* grants the reader its per-interval batch quota (section 4.1);
* triggers checkpoints at interval boundaries, enforcing that two
  checkpoint writes never overlap (section 4.3);
* takes the decoupled snapshot (section 4.2) and hands it to the
  background writer with the policy's full/incremental decision and the
  dynamically selected quantization bit width (sections 5.1, 6.2.1);
* declares checkpoints valid when their last byte lands, then lets the
  retention manager delete superseded ones (section 4.4);
* restores the newest valid checkpoint after a failure, rebuilding the
  tracker state and recording the restore against the bit-width
  controller's failure budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import CheckpointConfig
from ..data.reader import ReaderMaster
from ..distributed.clock import SimClock
from ..distributed.trainer import IntervalReport, SimTrainer
from ..errors import CheckpointError, CheckpointNotFoundError
from ..metrics.latency import LatencyModel
from ..quant.base import Quantizer
from ..quant.registry import make_quantizer
from ..storage.object_store import ObjectStore
from .bitwidth import BitWidthController
from .coordination import ReaderCoordinator
from .manifest import KIND_FULL, CheckpointManifest
from .policies import PolicyState, make_policy
from .restore import CheckpointRestorer, ReadStep, RestoreReport
from .retention import RetentionManager
from .snapshot import ModelSnapshot, SnapshotManager
from .tracker import TrackerSet
from .writer import CheckpointWriter, WriteReport, WriteStep

#: What to do when a checkpoint triggers while the previous one is
#: still being written (the paper forbids overlap, section 4.3).
OVERLAP_SKIP_NEW = "skip_new"
OVERLAP_CANCEL_PREVIOUS = "cancel_previous"


@dataclass
class CheckpointEvent:
    """One controller-level checkpoint outcome (for experiment logs)."""

    interval_index: int
    action: str  # "written", "skipped_overlap", "cancelled_previous"
    manifest: CheckpointManifest | None = None
    report: WriteReport | None = None


@dataclass
class PendingCheckpoint:
    """A staged checkpoint write whose PUTs have not all been submitted.

    Produced by :meth:`CheckNRun.begin_checkpoint`. The fleet scheduler
    interleaves :meth:`advance` calls from many jobs so their chunk
    transfers share the storage link fairly; the single-job
    :meth:`CheckNRun.checkpoint` drains it immediately. ``next_step``
    announces the upcoming PUT (and its earliest start time) before it
    is submitted.
    """

    checkpoint_id: str
    kind: str
    interval_index: int
    snapshot: ModelSnapshot
    steps: object  # generator of WriteStep
    next_step: WriteStep | None = None
    manifest: CheckpointManifest | None = None
    report: WriteReport | None = None

    @property
    def done(self) -> bool:
        return self.manifest is not None

    def advance(self) -> WriteStep | None:
        """Submit the announced PUT and announce the next one.

        Returns the new pending step, or ``None`` once the manifest has
        landed and the write is complete.
        """
        if self.done:
            return None
        try:
            self.next_step = next(self.steps)  # type: ignore[call-overload]
        except StopIteration as stop:
            self.manifest, self.report = stop.value
            self.next_step = None
        return self.next_step


@dataclass
class PendingRestore:
    """A staged restore whose GETs have not all been submitted.

    Produced by :meth:`CheckNRun.begin_restore` — the read-side mirror
    of :class:`PendingCheckpoint`. ``next_step`` announces the upcoming
    GET part (and its earliest start time) before it is submitted; the
    fleet scheduler interleaves :meth:`advance` calls from every job
    recovering in the same restore storm, so the shared link drains the
    storm part by part in arbiter order. The single-job
    :meth:`CheckNRun.restore_latest` drains it immediately.
    """

    checkpoint_id: str
    target: CheckpointManifest
    steps: object  # generator of ReadStep
    next_step: ReadStep | None = None
    report: RestoreReport | None = None
    #: Resume-plan candidates, newest first; ``target`` is the head.
    #: The fallback generator may land on a deeper candidate — see
    #: :attr:`restored_target`.
    plan: tuple[CheckpointManifest, ...] = ()

    @property
    def done(self) -> bool:
        return self.report is not None

    @property
    def restored_target(self) -> CheckpointManifest:
        """The manifest the drained restore actually landed on.

        Equal to :attr:`target` unless digest verification failed the
        newer candidates and the planner fell back down the plan.
        """
        assert self.report is not None
        for manifest in self.plan:
            if manifest.checkpoint_id == self.report.checkpoint_id:
                return manifest
        return self.target

    def advance(self) -> ReadStep | None:
        """Submit the announced GET part and announce the next one.

        Returns the new pending step, or ``None`` once the last read
        landed and the restore report is available.
        """
        if self.done:
            return None
        try:
            self.next_step = next(self.steps)  # type: ignore[call-overload]
        except StopIteration as stop:
            self.report = stop.value
            self.next_step = None
        return self.next_step


@dataclass
class ControllerStats:
    """Aggregate controller statistics for one run."""

    checkpoints_written: int = 0
    checkpoints_skipped: int = 0
    checkpoints_cancelled: int = 0
    restores: int = 0
    bytes_written_logical: int = 0
    bytes_written_physical: int = 0
    events: list[CheckpointEvent] = field(default_factory=list)
    #: Checkpoint ids each retention pass scrubbed, in deletion order —
    #: the determinism tests compare this sequence across seeded runs.
    retention_deleted: list[str] = field(default_factory=list)
    #: Checkpoints forced full by storm-aware retention's chain bound.
    baseline_refreshes: int = 0


class CheckNRun:
    """Checkpointing controller for one simulated training job."""

    def __init__(
        self,
        trainer: SimTrainer,
        reader: ReaderMaster,
        store: ObjectStore,
        config: CheckpointConfig,
        clock: SimClock,
        job_id: str = "job0",
        overlap_action: str = OVERLAP_SKIP_NEW,
        latency_model: LatencyModel | None = None,
    ) -> None:
        if overlap_action not in (OVERLAP_SKIP_NEW, OVERLAP_CANCEL_PREVIOUS):
            raise CheckpointError(
                f"unknown overlap action {overlap_action!r}"
            )
        self.trainer = trainer
        self.reader = reader
        self.store = store
        self.config = config
        self.clock = clock
        self.job_id = job_id
        self.overlap_action = overlap_action

        self.policy = make_policy(config.policy)
        self.tracker_set = TrackerSet(
            trainer.plan, config.track_in_forward_pass
        )
        trainer.register_step_hook(self.tracker_set.step_hook)
        self.coordinator = ReaderCoordinator(reader)
        self.snapshot_manager = SnapshotManager(trainer, clock)
        self.writer = CheckpointWriter(store, clock, latency_model)
        self.restorer = CheckpointRestorer(store, clock)
        self.retention = RetentionManager(
            store,
            config.keep_last,
            max_chain_length=config.max_chain_length,
        )
        self.bitwidth = BitWidthController(config.expected_restores)

        self.manifests: dict[str, CheckpointManifest] = {}
        self.interval_index = 0
        self._checkpoint_counter = 0
        self._current_base_id: str | None = None
        self._sizes_since_base: list[float] = []
        self._last_full_bytes: int | None = None
        self._pending: tuple[CheckpointManifest, WriteReport] | None = None
        self.stats = ControllerStats()

    # ------------------------------------------------------------------
    # Quantizer selection
    # ------------------------------------------------------------------

    def current_bit_width(self) -> int:
        """Configured fixed width, or the dynamic controller's choice."""
        if self.config.bit_width is not None:
            return self.config.bit_width
        return self.bitwidth.bit_width

    def _build_quantizer(self) -> Quantizer:
        bits = self.current_bit_width()
        name = self.config.quantizer
        # Section 5.2 summary: adaptive for <= 4 bits; at 8 bits the
        # naive asymmetric search is sufficient and cheaper.
        if name == "adaptive" and bits > 4:
            name = "asymmetric"
        return make_quantizer(
            name,
            bits=bits,
            num_bins=self.config.num_bins,
            ratio=self.config.ratio,
            compact_params=self.config.compact_metadata,
        )

    # ------------------------------------------------------------------
    # Interval loop
    # ------------------------------------------------------------------

    def run_intervals(
        self, num_intervals: int, batches_per_interval: int | None = None
    ) -> list[IntervalReport]:
        """Train N checkpoint intervals, checkpointing after each."""
        if num_intervals < 1:
            raise CheckpointError("need at least one interval")
        batches = batches_per_interval or self.config.interval_batches
        reports = []
        for _ in range(num_intervals):
            self.coordinator.grant_interval(batches)
            reports.append(self.trainer.train_interval(batches))
            self.checkpoint()
        return reports

    def run_for(
        self, duration_s: float, interval_s: float | None = None
    ) -> int:
        """Train for a span of simulated time with *time-based* intervals.

        This is the paper's actual trigger ("we initiate a new
        checkpoint every 30 minutes by default", section 4.3): a
        checkpoint fires at the first batch boundary after
        ``interval_s`` of training time. The reader-gap protocol still
        holds — quota is granted batch by batch, so at the moment the
        checkpoint triggers nothing is in flight.

        Returns the number of checkpoints taken.
        """
        if duration_s <= 0:
            raise CheckpointError("duration must be positive")
        interval = (
            self.config.interval_seconds
            if interval_s is None
            else interval_s
        )
        if interval is None or interval <= 0:
            raise CheckpointError(
                "time-based checkpointing needs a positive interval"
            )
        deadline = self.clock.now + duration_s
        next_trigger = self.clock.now + interval
        taken = 0
        while self.clock.now < deadline:
            self.coordinator.grant_interval(1)
            self.trainer.train_one_batch()
            if self.clock.now >= next_trigger:
                self.checkpoint()
                taken += 1
                next_trigger = self.clock.now + interval
        return taken

    # ------------------------------------------------------------------
    # Checkpoint trigger
    # ------------------------------------------------------------------

    def _handle_overlap(self) -> str | None:
        """Enforce the no-overlap rule; returns an event action or None."""
        if self._pending is None:
            return None
        manifest, _ = self._pending
        if manifest.valid_at_s <= self.clock.now:
            self._pending = None  # previous write completed in time
            return None
        if self.overlap_action == OVERLAP_SKIP_NEW:
            return "skipped_overlap"
        # cancel_previous: the unfinished checkpoint never became valid;
        # delete its objects and free the storage link.
        self.discard_unlanded_write()
        self.store.timeline.release()
        self.stats.checkpoints_cancelled += 1
        return "cancelled_previous"

    def discard_unlanded_write(self) -> str | None:
        """Drop the newest write if its last byte has not landed yet.

        Used when the write can no longer complete: cancellation, or a
        crash — a process death kills the background write pipeline,
        so a checkpoint whose manifest transfer was still in flight at
        the crash never becomes valid (section 4.4). Deletes the
        checkpoint's objects, rolls back the baseline/increment
        bookkeeping, and returns the discarded id (None if the newest
        write had already landed).
        """
        if self._pending is None:
            return None
        manifest, _ = self._pending
        if manifest.valid_at_s <= self.clock.now:
            self._pending = None
            return None
        from .manifest import checkpoint_prefix

        self.store.delete_prefix(
            checkpoint_prefix(self.job_id, manifest.checkpoint_id)
        )
        self.manifests.pop(manifest.checkpoint_id, None)
        if (
            manifest.kind == KIND_FULL
            and self._current_base_id == manifest.checkpoint_id
        ):
            # The discarded checkpoint was the new baseline; roll back
            # to having no baseline so the next decision re-takes full.
            self._current_base_id = None
            self._sizes_since_base = []
            self._last_full_bytes = None
        elif self._sizes_since_base:
            self._sizes_since_base.pop()
        self._pending = None
        return manifest.checkpoint_id

    def reset_for_scratch_restart(self) -> list[str]:
        """Forget all checkpoint state after a from-scratch recovery.

        A job restarting with no restorable checkpoint must not keep
        baselines, increment-size history, or manifest records from its
        previous life — a later incremental decision would otherwise
        base on pre-restart weights and restore silently wrong state.
        Returns the forgotten checkpoint ids so the caller can scrub
        their stored objects.
        """
        forgotten = list(self.manifests)
        self.manifests.clear()
        self._current_base_id = None
        self._sizes_since_base = []
        self._last_full_bytes = None
        self._pending = None
        self.interval_index = 0
        self.tracker_set.reset_all()
        return forgotten

    def checkpoint(self) -> CheckpointEvent:
        """Trigger one checkpoint at the current interval boundary."""
        started = self.begin_checkpoint()
        if isinstance(started, CheckpointEvent):
            return started
        while started.advance() is not None:
            pass
        return self.finish_checkpoint(started)

    def record_skip(
        self,
        action: str = "skipped_overlap",
        interval: int | None = None,
        advance: bool = True,
    ) -> CheckpointEvent:
        """Record a trigger that produced no write (overlap/admission).

        The interval normally advances — the paper's controller simply
        does not start a new checkpoint while the previous one is in
        flight (section 4.3); the fleet scheduler additionally skips
        triggers its admission controller rejects. A *restage* skip
        (``advance=False``) belongs to an already-counted interval, so
        it neither re-reads nor bumps the index.
        """
        if interval is None:
            interval = self.interval_index
        event = CheckpointEvent(interval, action)
        if advance:
            self.interval_index += 1
        self.stats.checkpoints_skipped += 1
        self.stats.events.append(event)
        return event

    def begin_checkpoint(
        self, restage: bool = False, force_full: bool = False
    ) -> CheckpointEvent | PendingCheckpoint:
        """Snapshot, decide full/incremental, and stage the write.

        Returns a skip :class:`CheckpointEvent` if the previous write is
        still in flight, else a primed :class:`PendingCheckpoint` whose
        first chunk is quantized and awaiting submission. Callers must
        drain it with :meth:`PendingCheckpoint.advance` and then call
        :meth:`finish_checkpoint` (or :meth:`abort_pending` on a crash).

        ``restage=True`` re-stages a write whose predecessor was aborted
        by tier preemption (see :mod:`repro.fleet.scheduler`): the new
        write belongs to the *already counted* interval, so the interval
        index is neither re-read nor advanced — the checkpoint covers a
        fresh snapshot but keeps the job's interval accounting intact.
        """
        interval = (
            max(0, self.interval_index - 1)
            if restage
            else self.interval_index
        )
        overlap = self._handle_overlap()
        if overlap == "skipped_overlap":
            return self.record_skip(
                "skipped_overlap", interval=interval, advance=not restage
            )

        reader_state = self.coordinator.collect_state()
        snapshot = self.snapshot_manager.take_snapshot(
            interval, self.tracker_set, reader_state
        )
        self.coordinator.resume()

        decision = self.policy.decide(
            PolicyState(
                interval_index=interval,
                incremental_sizes=tuple(self._sizes_since_base),
            )
        )
        if force_full:
            # Peer replication only flushes retention-boundary
            # baselines to the store: every landed write must be a
            # self-contained full so the ring anchors can re-base on it.
            decision = KIND_FULL
        if decision != KIND_FULL and self._current_base_id is None:
            # Nothing to increment on (first checkpoint, or baseline
            # cancelled): force a full one.
            decision = KIND_FULL
        if decision != KIND_FULL:
            base_id = self._prospective_base_id()
            if self.retention.wants_baseline_refresh(
                self.manifests, self.policy, base_id
            ):
                # Storm-aware retention: one more increment would push
                # the restore chain past its bound — refresh the
                # baseline so a restore storm never re-reads a chain
                # longer than max_chain_length through the link.
                decision = KIND_FULL
                self.stats.baseline_refreshes += 1

        checkpoint_id = f"ckpt-{self._checkpoint_counter:06d}"
        self._checkpoint_counter += 1
        base_id = (
            None if decision == KIND_FULL else self._prospective_base_id()
        )

        quantizer = self._build_quantizer()
        # The fp32 baseline stays fp32 throughout: quantizing only the
        # optimizer state under the "none" quantizer would break the
        # bit-exact-restore property the baseline exists to provide.
        quantize_state = (
            self.config.quantize_optimizer_state
            and quantizer.name != "none"
        )
        steps = self.writer.write_checkpoint_steps(
            snapshot,
            decision,
            checkpoint_id,
            self.job_id,
            base_id,
            self.policy.name,
            quantizer,
            self.config.chunk_rows,
            quantize_state,
            adaptive_num_bins=self.config.num_bins,
            adaptive_ratio=self.config.ratio,
        )
        pending = PendingCheckpoint(
            checkpoint_id=checkpoint_id,
            kind=decision,
            interval_index=interval,
            snapshot=snapshot,
            steps=steps,
        )
        pending.advance()  # prime: quantize chunk 1, announce its PUT
        if not restage:
            self.interval_index += 1
        return pending

    def finish_checkpoint(
        self, pending: PendingCheckpoint
    ) -> CheckpointEvent:
        """Book-keep a drained staged write: validity, baseline, retention."""
        if not pending.done:
            raise CheckpointError(
                f"checkpoint {pending.checkpoint_id!r} still has "
                "unsubmitted writes"
            )
        manifest, report = pending.manifest, pending.report
        assert manifest is not None and report is not None
        pending.snapshot.release(self.trainer)
        self.manifests[pending.checkpoint_id] = manifest
        self._pending = (manifest, report)

        if pending.kind == KIND_FULL:
            self._current_base_id = pending.checkpoint_id
            self._sizes_since_base = []
            self._last_full_bytes = report.logical_bytes
        else:
            if not self._last_full_bytes:
                raise CheckpointError(
                    "incremental checkpoint without a recorded baseline "
                    "size"
                )
            self._sizes_since_base.append(
                report.logical_bytes / self._last_full_bytes
            )
        if self.policy.reset_tracker_after(pending.kind):
            self.tracker_set.reset_all()

        # Retention: the just-written checkpoint is still in flight at
        # this point, so validity-aware enforcement keeps the newest
        # valid one(s) until the new write completes.
        retention = self.retention.enforce(
            self.manifests, self.policy, self.job_id, now_s=self.clock.now
        )
        self.stats.retention_deleted.extend(retention.deleted_ids)

        self.stats.checkpoints_written += 1
        self.stats.bytes_written_logical += report.logical_bytes
        self.stats.bytes_written_physical += report.physical_bytes
        event = CheckpointEvent(
            pending.interval_index, "written", manifest, report
        )
        self.stats.events.append(event)
        return event

    def abort_pending(self, pending: PendingCheckpoint) -> None:
        """Abandon a staged write after a crash or preemption.

        Already-stored chunks stay behind as a *torn* checkpoint — no
        manifest was written, so the restore path never considers it
        (the manifest-last invariant). Closing the staged generator
        additionally aborts any in-flight multipart upload through the
        transfer engine, so a write preempted mid-part leaves no
        visible object and no orphaned parts behind. The snapshot's
        host memory is released; controller state is otherwise
        untouched, since the crash recovery path rebuilds it from
        stored manifests.
        """
        pending.snapshot.release(self.trainer)
        steps = pending.steps
        pending.steps = iter(())  # no more PUTs
        pending.next_step = None
        close = getattr(steps, "close", None)
        if close is not None:
            close()  # GeneratorExit -> StagedPut.abort() mid-upload

    def _last_checkpoint_id(self) -> str | None:
        if not self.manifests:
            return None
        latest = max(
            self.manifests.values(),
            key=lambda m: (m.interval_index, m.valid_at_s),
        )
        return latest.checkpoint_id

    def _prospective_base_id(self) -> str | None:
        """The checkpoint the next *incremental* write would chain on:
        the previous checkpoint for consecutive policies (chains grow),
        the standing baseline otherwise (chains stay two links)."""
        if self.policy.name == "consecutive":
            return self._last_checkpoint_id()
        return self._current_base_id

    # ------------------------------------------------------------------
    # Restore
    # ------------------------------------------------------------------

    def adopt_manifests(
        self, manifests: dict[str, CheckpointManifest]
    ) -> None:
        """Adopt checkpoints written by a previous process of this job.

        Rebuilds the controller's continuation state — checkpoint-id
        counter, current baseline, and the increment-size history the
        intermittent predictor needs — from the stored manifests, so a
        resumed job keeps numbering and policy decisions consistent.
        """
        import re

        self.manifests.update(manifests)
        for checkpoint_id in self.manifests:
            match = re.fullmatch(r"ckpt-(\d+)", checkpoint_id)
            if match:
                self._checkpoint_counter = max(
                    self._checkpoint_counter, int(match.group(1)) + 1
                )
        ordered = sorted(
            self.manifests.values(),
            key=lambda m: (m.interval_index, m.valid_at_s),
        )
        fulls = [m for m in ordered if m.kind == KIND_FULL]
        if fulls:
            base = fulls[-1]
            self._current_base_id = base.checkpoint_id
            self._last_full_bytes = base.logical_bytes
            self._sizes_since_base = [
                m.logical_bytes / base.logical_bytes
                for m in ordered
                if m.kind != KIND_FULL
                and m.interval_index > base.interval_index
            ]
        if ordered:
            self.interval_index = ordered[-1].interval_index + 1

    def begin_restore(
        self,
        at_time_s: float | None = None,
        order: str = "manifest",
        hot_rows=None,
    ) -> PendingRestore:
        """Stage a restore of the newest checkpoint valid at ``at_time``.

        Returns a primed :class:`PendingRestore` whose first GET part
        is announced and awaiting submission. Callers drain it with
        :meth:`PendingRestore.advance` and then call
        :meth:`finish_restore` — the fleet scheduler interleaves
        advances from every job recovering in the same storm. The
        staged reads restore *through* corruption: when digest/CRC
        verification fails the newest candidate mid-read, the restore
        falls back down the resume plan to the newest fully-verified
        chain instead of raising. Raises
        :class:`CheckpointNotFoundError` when nothing is restorable
        (and draining raises it when every plan candidate fails).
        """
        plan = self.restorer.plan_resume(
            self.job_id, at_time_s, policy=self.policy
        )
        if not plan:
            raise CheckpointNotFoundError(
                f"job {self.job_id!r} has no valid checkpoint to restore"
            )
        steps = self.restorer.restore_with_fallback_steps(
            self.trainer.model,
            plan,
            self.manifests,
            reader=self.reader,
            policy=self.policy,
            order=order,
            hot_rows=hot_rows,
        )
        pending = PendingRestore(
            checkpoint_id=plan[0].checkpoint_id,
            target=plan[0],
            steps=steps,
            plan=tuple(plan),
        )
        pending.advance()  # prime: resolve the chain, announce part 1
        return pending

    def finish_restore(self, pending: PendingRestore) -> RestoreReport:
        """Book-keep a drained staged restore: trackers, interval, stats.

        Rebuilds tracker state: for one-shot/intermittent policies the
        target increment's rows *are* the modified-since-baseline set,
        so they are re-marked; for full/consecutive the trackers start
        a fresh interval empty.
        """
        if not pending.done:
            raise CheckpointError(
                f"restore of {pending.checkpoint_id!r} still has "
                "unsubmitted reads"
            )
        report = pending.report
        assert report is not None
        # The fallback path may have restored a deeper plan candidate
        # than the announced target; trackers and the interval counter
        # must follow what actually loaded.
        target = pending.restored_target
        self.tracker_set.reset_all()
        if not self.policy.reset_tracker_after(target.kind):
            # Tracker accumulates since the baseline: re-mark the rows
            # the restored increment carried.
            for table_id, rows in report.target_rows_by_table.items():
                if target.kind != KIND_FULL:
                    self.tracker_set.mark_table_rows(table_id, rows)
        self.interval_index = target.interval_index + 1
        self._pending = None
        if self.config.bit_width is None:
            self.bitwidth.record_restore()
        self.stats.restores += 1
        return report

    def restore_latest(
        self, at_time_s: float | None = None
    ) -> RestoreReport:
        """Recover from the newest checkpoint valid at ``at_time``.

        Stages the restore and drains it immediately (reads
        back-to-back) — the single-job path, timing-identical to
        staging the same restore without interleaved traffic.
        """
        pending = self.begin_restore(at_time_s)
        while pending.advance() is not None:
            pass
        return self.finish_restore(pending)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def valid_manifests(
        self, at_time_s: float | None = None
    ) -> list[CheckpointManifest]:
        deadline = self.clock.now if at_time_s is None else at_time_s
        return sorted(
            (
                m
                for m in self.manifests.values()
                if m.valid_at_s <= deadline
            ),
            key=lambda m: m.interval_index,
        )

    def stall_fraction(self) -> float:
        """Snapshot-stall share of all simulated time (paper: < 0.4%)."""
        return self.snapshot_manager.stall_fraction()
