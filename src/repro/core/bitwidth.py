"""Dynamic quantization bit-width selection (paper section 6.2.1).

Quantization error only enters training when a job *restores* from a
quantized checkpoint; each restore injects one round of de-quantization
noise. The paper measures how many restores each bit width tolerates
before cumulative accuracy degradation crosses the 0.01% business
threshold:

    expected restores L <= 1   -> 2-bit
    1 < L <= 3                 -> 3-bit
    3 < L < 20                 -> 4-bit
    20 <= L                    -> 8-bit  (tolerates 100+ restores)

Check-N-Run estimates L from the job's expected duration and the
fleet's failure probability, picks the width up front, and falls back
to 8-bit automatically if observed failures exceed the estimate.
"""

from __future__ import annotations

from ..errors import CheckpointError

#: (max restores tolerated, bit width) in ascending order; the paper's
#: Fig 14 thresholds.
RESTORE_TOLERANCE_TABLE: tuple[tuple[int, int], ...] = (
    (1, 2),
    (3, 3),
    (19, 4),
)

#: Fallback width: tolerates over 100 restores (section 6.2.1).
FALLBACK_BIT_WIDTH = 8


def select_bit_width(expected_restores: int) -> int:
    """Pick the narrowest width whose restore tolerance covers ``L``."""
    if expected_restores < 0:
        raise CheckpointError(
            f"expected_restores must be >= 0, got {expected_restores}"
        )
    for max_restores, bits in RESTORE_TOLERANCE_TABLE:
        if expected_restores <= max_restores:
            return bits
    return FALLBACK_BIT_WIDTH


def expected_restores(
    failure_rate_per_hour: float, expected_duration_hours: float
) -> int:
    """Expected number of failure-driven restores during a job.

    Failures arrive as a Poisson process with the fleet-measured rate
    (the paper: "the probability of a node failure in our training
    cluster (p) is provided as input ... computed from failure logs"),
    so the expectation is simply rate x duration, rounded up — a
    conservative estimate keeps accuracy inside the threshold.
    """
    if failure_rate_per_hour < 0:
        raise CheckpointError("failure rate must be >= 0")
    if expected_duration_hours < 0:
        raise CheckpointError("duration must be >= 0")
    expectation = failure_rate_per_hour * expected_duration_hours
    return int(-(-expectation // 1))  # ceil without importing math


class BitWidthController:
    """Holds the chosen width; falls back to 8-bit on excess failures."""

    def __init__(self, expected_restores_estimate: int) -> None:
        if expected_restores_estimate < 0:
            raise CheckpointError("estimate must be >= 0")
        self.expected = expected_restores_estimate
        self.observed = 0
        self._width = select_bit_width(expected_restores_estimate)
        self.fell_back = False

    @property
    def bit_width(self) -> int:
        return self._width

    def record_restore(self) -> int:
        """Note one restore; returns the (possibly updated) width.

        "If the number of failures exceeds the estimates during
        training, Check-N-Run automatically falls back to 8-bit
        quantization." (section 6.2.1)
        """
        self.observed += 1
        if self.observed > self.expected and not self.fell_back:
            self._width = FALLBACK_BIT_WIDTH
            self.fell_back = True
        return self._width
