"""Reader-trainer coordination (paper section 4.1).

The controller tells the reader master exactly how many batches to read
before the next checkpoint; the reader reads precisely that many and
stops. When the trainer finishes the interval's last batch, nothing is
in flight and the reader state equals the trainer state — the gap that
would otherwise skip or double-train samples on resume is gone.
"""

from __future__ import annotations

from ..data.reader import ReaderMaster
from ..data.state import ReaderState
from ..errors import ReaderError


class ReaderCoordinator:
    """The controller-side handle on the reader master."""

    def __init__(self, reader: ReaderMaster) -> None:
        self.reader = reader
        self.intervals_granted = 0

    @property
    def coordinated(self) -> bool:
        return self.reader.config.coordinated

    def grant_interval(self, num_batches: int) -> None:
        """Authorise the reader to serve the next interval's batches."""
        if self.coordinated:
            self.reader.begin_interval(num_batches)
        self.intervals_granted += 1

    def collect_state(self) -> ReaderState:
        """Pause reading and capture the reader state for a checkpoint.

        In coordinated mode the queue must already be drained — a
        non-empty queue here means the trainer did not consume the whole
        interval, which is a protocol violation worth failing loudly on.
        """
        self.reader.pause()
        try:
            state = self.reader.collect_state()
        except ReaderError:
            self.reader.resume()
            raise
        return state

    def resume(self) -> None:
        """Let the reader continue after state collection."""
        self.reader.resume()
