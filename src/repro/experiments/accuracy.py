"""Fig 14: lifetime accuracy degradation from quantized restores.

Design notes (full rationale in EXPERIMENTS.md):

* Training quality is tracked by **progressive validation** — each
  batch's loss is measured before the model trains on it, and the
  *lifetime* metric is the cumulative progressive loss, exactly the
  "training lifetime accuracy" a production CTR trainer monitors.
* The baseline and each variant train over **identical batch streams**
  (paired comparison); the variant's embedding tables pass through a
  quantize/de-quantize round trip at each restore point, which is
  precisely what resuming from a quantized checkpoint does (training
  itself always runs fp32, per the paper).
* Labels are **sparse-dominated** (``sparse_signal_scale`` >
  ``dense_signal_scale``) so that embeddings carry the signal being
  damaged, matching production CTR models; tables are small enough
  that rows are genuinely trained at laptop scale.
* Results are averaged over several seeds: one quantization event is a
  single random-ish perturbation whose first-order effect on loss has
  arbitrary sign; the paper's systematic second-order damage emerges in
  the mean.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DataConfig, ModelConfig
from ..data.synthetic import SyntheticClickDataset
from ..errors import SimulationError
from ..model.dlrm import DLRM
from ..quant.registry import make_quantizer


@dataclass(frozen=True)
class DegradationPoint:
    """Mean degradation after a number of trained batches."""

    batches_trained: int
    degradation_pct: float


@dataclass(frozen=True)
class DegradationCurve:
    """One line of a Fig 14 panel (seed-averaged)."""

    bits: int
    num_restores: int
    points: tuple[DegradationPoint, ...]

    @property
    def final_degradation_pct(self) -> float:
        return self.points[-1].degradation_pct


def _default_model_config() -> ModelConfig:
    return ModelConfig(
        num_tables=4,
        rows_per_table=(512,) * 4,
        embedding_dim=16,
        bottom_mlp=(32, 16),
        top_mlp=(32, 1),
        hotness=4,
        seed=77,
    )


def _default_data_config(seed: int) -> DataConfig:
    return DataConfig(
        batch_size=256,
        seed=seed,
        dense_signal_scale=0.3,
        sparse_signal_scale=1.5,
    )


def _apply_quantized_restore(model: DLRM, bits: int, num_bins: int):
    quantizer = make_quantizer("adaptive", bits=bits, num_bins=num_bins)
    for table_id in range(model.num_tables):
        weight = model.table_weight(table_id)
        weight[:] = quantizer.dequantize(quantizer.quantize(weight))


def _cumulative_progressive_loss(
    model_config: ModelConfig,
    dataset: SyntheticClickDataset,
    total_batches: int,
    restore_points: set[int],
    bits: int | None,
    adaptive_bins: int,
) -> np.ndarray:
    """Cumulative per-batch (pre-update) loss series of one run."""
    model = DLRM(model_config)
    series = np.empty(total_batches, dtype=np.float64)
    cumulative = 0.0
    for batch_index in range(total_batches):
        result = model.train_step(dataset.batch(batch_index))
        cumulative += result.loss
        series[batch_index] = cumulative
        if bits is not None and (batch_index + 1) in restore_points:
            _apply_quantized_restore(model, bits, adaptive_bins)
    return series


#: Baseline series cache: (config fingerprint, seed) -> series.
_BASELINE_CACHE: dict[tuple, np.ndarray] = {}


def accuracy_degradation_experiment(
    bits: int,
    restore_counts: tuple[int, ...],
    total_batches: int = 300,
    grid_every: int = 60,
    seeds: tuple[int, ...] = (78, 79, 80),
    model_config: ModelConfig | None = None,
    adaptive_bins: int = 25,
) -> list[DegradationCurve]:
    """Fig 14 panel for one bit width; one curve per restore count."""
    if total_batches < 1:
        raise SimulationError("need at least one training batch")
    if not seeds:
        raise SimulationError("need at least one seed")
    model_config = model_config or _default_model_config()

    baselines: dict[int, np.ndarray] = {}
    datasets: dict[int, SyntheticClickDataset] = {}
    for seed in seeds:
        datasets[seed] = SyntheticClickDataset(
            model_config, _default_data_config(seed)
        )
        key = (model_config.seed, model_config.rows_per_table,
               total_batches, seed)
        if key not in _BASELINE_CACHE:
            _BASELINE_CACHE[key] = _cumulative_progressive_loss(
                model_config, datasets[seed], total_batches, set(),
                None, adaptive_bins,
            )
        baselines[seed] = _BASELINE_CACHE[key]

    grid = list(range(grid_every - 1, total_batches, grid_every))
    curves = []
    for num_restores in restore_counts:
        restore_points = {
            int(round((i + 1) * total_batches / (num_restores + 1)))
            for i in range(num_restores)
        }
        per_seed = []
        for seed in seeds:
            variant = _cumulative_progressive_loss(
                model_config, datasets[seed], total_batches,
                restore_points, bits, adaptive_bins,
            )
            base = baselines[seed]
            per_seed.append(100.0 * (variant - base) / base)
        mean_series = np.mean(per_seed, axis=0)
        curves.append(
            DegradationCurve(
                bits=bits,
                num_restores=num_restores,
                points=tuple(
                    DegradationPoint(g + 1, float(mean_series[g]))
                    for g in grid
                ),
            )
        )
    return curves
