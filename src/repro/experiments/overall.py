"""Fig 17: overall bandwidth/capacity reduction of the full system.

For each restore-count band L the paper selects a quantization bit
width (section 6.2.1) and combines it with the intermittent incremental
policy; the reduction factors are measured against the baseline
checkpointing system "that uses neither quantization nor incremental
views" — i.e. the FULL policy at fp32.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import (
    CheckpointConfig,
    ClusterConfig,
    DataConfig,
    ExperimentConfig,
    ModelConfig,
    ReaderConfig,
    StorageConfig,
)
from ..core.bitwidth import select_bit_width
from ..metrics.accounting import peak_capacity
from .common import build_experiment


@dataclass(frozen=True)
class ReductionRow:
    """One band of Fig 17."""

    band: str
    restores: int
    bit_width: int
    bandwidth_reduction: float
    capacity_reduction: float


#: The paper's Fig 17 x-axis bands and a representative L per band.
PAPER_BANDS: tuple[tuple[str, int], ...] = (
    ("L <= 1", 1),
    ("1 < L <= 3", 3),
    ("3 < L < 20", 10),
    ("20 <= L", 25),
)


def _config(
    policy: str,
    quantizer: str,
    bit_width: int | None,
    interval_batches: int,
    rows_per_table: int,
    num_tables: int,
) -> ExperimentConfig:
    return ExperimentConfig(
        model=ModelConfig(
            num_tables=num_tables,
            # dim 32: close enough to production vector widths that the
            # per-row quantization metadata stops dominating the savings
            # (the paper's vectors are ~64 wide, section 2.1).
            rows_per_table=(rows_per_table,) * num_tables,
            embedding_dim=32,
            bottom_mlp=(32, 32),
            top_mlp=(32, 1),
            hotness=4,
            seed=55,
        ),
        data=DataConfig(batch_size=256, zipf_alpha=1.1, seed=54),
        reader=ReaderConfig(coordinated=True),
        cluster=ClusterConfig(num_nodes=2, devices_per_node=4),
        storage=StorageConfig(),
        checkpoint=CheckpointConfig(
            interval_batches=interval_batches,
            policy=policy,
            quantizer=quantizer,
            bit_width=bit_width,
            keep_last=2,
        ),
    )


def _run(config: ExperimentConfig, job_id: str, intervals: int):
    exp = build_experiment(config, job_id=job_id)
    exp.controller.run_intervals(intervals)
    total_bytes = exp.controller.stats.bytes_written_logical
    duration = exp.clock.now
    peak = peak_capacity(exp.store.capacity_series())
    return total_bytes / duration, peak


def overall_reduction_experiment(
    num_intervals: int = 12,
    interval_batches: int = 30,
    rows_per_table: int = 32768,
    num_tables: int = 4,
    bands: tuple[tuple[str, int], ...] = PAPER_BANDS,
) -> list[ReductionRow]:
    """Fig 17: reductions per restore-count band vs the fp32 baseline."""
    baseline_bw, baseline_peak = _run(
        _config(
            "full", "none", None, interval_batches, rows_per_table,
            num_tables,
        ),
        "baseline",
        num_intervals,
    )
    rows = []
    for band, restores in bands:
        bits = select_bit_width(restores)
        variant_bw, variant_peak = _run(
            _config(
                "intermittent",
                "adaptive",
                bits,
                interval_batches,
                rows_per_table,
                num_tables,
            ),
            f"band-{restores}",
            num_intervals,
        )
        rows.append(
            ReductionRow(
                band=band,
                restores=restores,
                bit_width=bits,
                bandwidth_reduction=baseline_bw / variant_bw,
                capacity_reduction=baseline_peak / variant_peak,
            )
        )
    return rows
