"""Section 6.1 overhead table: snapshot stall and tracking overhead.

The paper reports three numbers at production scale (16 nodes x 8
GPUs, terabyte-class model, 30-minute intervals):

* snapshot stall <= 7 seconds;
* < 0.4% training-throughput loss from stalls at 30-minute intervals;
* < 1% overhead from modified-row tracking.

The stall number is a pure function of per-node state bytes and the
GPU-to-host copy bandwidth (nodes copy concurrently), so it is computed
at true paper scale without materialising terabyte arrays. The tracking
overhead is measured on a real (scaled-down) trainer run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ClusterConfig
from ..errors import SimulationError
from .common import build_experiment, small_config


@dataclass(frozen=True)
class StallRow:
    """One model-size row of the stall table."""

    model_bytes: int
    stall_s: float
    overhead_fraction: float  # of a checkpoint interval


def snapshot_stall_at_scale(
    model_bytes: int,
    cluster: ClusterConfig | None = None,
    interval_s: float = 1800.0,
) -> StallRow:
    """Stall time for a model of ``model_bytes`` on the paper cluster.

    State is assumed evenly spread over nodes (the sharder balances by
    bytes); the stall is the per-node copy time plus the fixed
    synchronisation overhead.
    """
    if model_bytes <= 0:
        raise SimulationError("model bytes must be positive")
    cluster = cluster or ClusterConfig()  # the paper's 16 x 8 topology
    per_node = model_bytes / cluster.num_nodes
    stall = (
        per_node / cluster.gpu_to_host_bandwidth
        + cluster.snapshot_fixed_overhead_s
    )
    return StallRow(
        model_bytes=model_bytes,
        stall_s=stall,
        overhead_fraction=stall / (stall + interval_s),
    )


@dataclass(frozen=True)
class TrackingOverheadResult:
    """Measured tracking overhead on a real trainer run."""

    tracking_exposed_s: float
    train_time_s: float

    @property
    def overhead_fraction(self) -> float:
        if self.train_time_s == 0:
            return 0.0
        return self.tracking_exposed_s / self.train_time_s


def tracking_overhead_experiment(
    batches: int = 50,
) -> TrackingOverheadResult:
    """Run a real trainer and report the exposed tracking share."""
    exp = build_experiment(
        small_config(
            num_tables=4,
            rows_per_table=4096,
            batch_size=256,
            interval_batches=batches,
        )
    )
    exp.controller.coordinator.grant_interval(batches)
    report = exp.trainer.train_interval(batches)
    return TrackingOverheadResult(
        tracking_exposed_s=report.tracking_exposed_s,
        train_time_s=report.train_time_s,
    )
