"""Figs 15/16: incremental-policy bandwidth and capacity over intervals.

Runs the *real* controller stack (training, tracking, snapshotting,
writing to the bandwidth-accounted store) once per policy over the same
workload, then reads the per-interval checkpoint sizes (Fig 15's
bandwidth proxy) and the store's live-capacity series (Fig 16) out of
the run artifacts.

Quantization is disabled here ("none") to isolate the incremental-view
effect, exactly as the paper's section 6.3.1 does.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import (
    CheckpointConfig,
    ClusterConfig,
    DataConfig,
    ExperimentConfig,
    ModelConfig,
    ReaderConfig,
    StorageConfig,
)
from ..errors import SimulationError
from .common import build_experiment


@dataclass(frozen=True)
class PolicyRun:
    """Per-interval series for one policy (one line of Figs 15/16)."""

    policy: str
    #: checkpoint logical size per interval / full-model checkpoint size
    size_fractions: tuple[float, ...]
    #: live stored capacity / full-model checkpoint size, after each
    #: interval's write completed
    capacity_fractions: tuple[float, ...]
    kinds: tuple[str, ...]


def _experiment_config(
    policy: str,
    intervals_batches: int,
    rows_per_table: int,
    num_tables: int,
    zipf_alpha: float,
) -> ExperimentConfig:
    return ExperimentConfig(
        model=ModelConfig(
            num_tables=num_tables,
            rows_per_table=(rows_per_table,) * num_tables,
            embedding_dim=16,
            bottom_mlp=(32, 16),
            top_mlp=(32, 1),
            hotness=4,
            seed=99,
        ),
        data=DataConfig(batch_size=256, zipf_alpha=zipf_alpha, seed=98),
        reader=ReaderConfig(coordinated=True),
        cluster=ClusterConfig(num_nodes=2, devices_per_node=4),
        storage=StorageConfig(),
        checkpoint=CheckpointConfig(
            interval_batches=intervals_batches,
            policy=policy,
            quantizer="none",
            keep_last=1_000_000,  # retention off: Fig 16 wants raw growth
        ),
    )


def incremental_policy_experiment(
    policies: tuple[str, ...] = (
        "one_shot",
        "intermittent",
        "consecutive",
    ),
    num_intervals: int = 12,
    interval_batches: int = 30,
    rows_per_table: int = 32768,
    num_tables: int = 4,
    zipf_alpha: float = 1.1,
) -> list[PolicyRun]:
    """Run the three policies over identical workloads (Figs 15/16)."""
    if num_intervals < 2:
        raise SimulationError("need at least two intervals")
    runs = []
    for policy in policies:
        exp = build_experiment(
            _experiment_config(
                policy,
                interval_batches,
                rows_per_table,
                num_tables,
                zipf_alpha,
            ),
            job_id=f"job-{policy}",
        )
        exp.controller.run_intervals(num_intervals)
        events = [
            e for e in exp.controller.stats.events if e.report is not None
        ]
        full_bytes = events[0].report.logical_bytes
        size_fractions = tuple(
            e.report.logical_bytes / full_bytes for e in events
        )
        kinds = tuple(e.manifest.kind for e in events)
        # Required capacity after each interval: the bytes of every
        # checkpoint the newest one's restore chain still needs — the
        # paper's definition (one-shot keeps baseline + latest;
        # consecutive must keep the whole chain). Retention is disabled
        # in this run so every manifest is still available to walk.
        manifests = exp.controller.manifests
        capacity = []
        for event in events:
            chain = exp.controller.policy.restore_chain(
                event.manifest, manifests
            )
            capacity.append(
                sum(m.logical_bytes for m in chain) / full_bytes
            )
        runs.append(
            PolicyRun(
                policy=policy,
                size_fractions=size_fractions,
                capacity_fractions=tuple(capacity),
                kinds=kinds,
            )
        )
    return runs
