"""Reusable experiment drivers shared by benchmarks and examples."""

from .accuracy import DegradationCurve, accuracy_degradation_experiment
from .common import (
    Experiment,
    build_experiment,
    paper_scale_config,
    small_config,
    trained_embedding_matrix,
)
from .incremental import PolicyRun, incremental_policy_experiment
from .modified import (
    IntervalModifiedResult,
    ModifiedFractionCurve,
    interval_modified_experiment,
    modified_fraction_experiment,
)
from .overall import (
    PAPER_BANDS,
    ReductionRow,
    overall_reduction_experiment,
)
from .quanterr import (
    ImprovementPoint,
    QuantErrorRow,
    adaptive_bins_sweep,
    adaptive_ratio_sweep,
    optimal_bins,
    quant_error_comparison,
)
from .stall import (
    StallRow,
    TrackingOverheadResult,
    snapshot_stall_at_scale,
    tracking_overhead_experiment,
)

__all__ = [
    "PAPER_BANDS",
    "DegradationCurve",
    "Experiment",
    "ImprovementPoint",
    "IntervalModifiedResult",
    "ModifiedFractionCurve",
    "PolicyRun",
    "QuantErrorRow",
    "ReductionRow",
    "StallRow",
    "TrackingOverheadResult",
    "accuracy_degradation_experiment",
    "adaptive_bins_sweep",
    "adaptive_ratio_sweep",
    "build_experiment",
    "incremental_policy_experiment",
    "interval_modified_experiment",
    "modified_fraction_experiment",
    "optimal_bins",
    "overall_reduction_experiment",
    "paper_scale_config",
    "quant_error_comparison",
    "small_config",
    "snapshot_stall_at_scale",
    "tracking_overhead_experiment",
    "trained_embedding_matrix",
]
