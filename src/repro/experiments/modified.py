"""Modified-fraction experiments (paper Figs 5 and 6).

Fig 5 plots the fraction of the model modified as a function of training
samples, observed from three different starting points; Fig 6 plots the
fraction modified within fixed-length intervals. Both are driven purely
by the categorical access distribution, so the driver samples Zipfian
lookups directly (no gradient math needed) and marks bit-vectors exactly
the way the production tracker does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.synthetic import ZipfianSampler
from ..errors import SimulationError


@dataclass(frozen=True)
class ModifiedFractionCurve:
    """One observation window of Fig 5."""

    start_step: int
    steps: tuple[int, ...]  # cumulative samples at each measurement
    fractions: tuple[float, ...]


@dataclass(frozen=True)
class IntervalModifiedResult:
    """Fig 6: modified fraction per interval length."""

    interval_steps: int
    fractions: tuple[float, ...]  # one per measured interval

    @property
    def mean_fraction(self) -> float:
        return float(np.mean(self.fractions))


def modified_fraction_experiment(
    rows: int = 200_000,
    alpha: float = 1.05,
    lookups_per_step: int = 20_000,
    total_steps: int = 60,
    starts: tuple[int, ...] = (0, 20, 40),
    seed: int = 31,
) -> list[ModifiedFractionCurve]:
    """Fig 5: touched fraction versus samples from several start points.

    One "step" stands for a fixed wall-clock slice of training (the
    paper's x-axis unit is billions of samples; ours is
    ``lookups_per_step`` Zipf draws).
    """
    if total_steps < 1 or lookups_per_step < 1:
        raise SimulationError("steps and lookups must be positive")
    if any(s < 0 or s >= total_steps for s in starts):
        raise SimulationError("observation starts must fall inside the run")
    sampler = ZipfianSampler(rows, alpha, seed)
    rng = np.random.default_rng(seed ^ 0x55AA)
    masks = {start: np.zeros(rows, dtype=bool) for start in starts}
    curves: dict[int, list[tuple[int, float]]] = {s: [] for s in starts}
    for step in range(total_steps):
        draws = sampler.sample((lookups_per_step,), rng)
        for start, mask in masks.items():
            if step >= start:
                mask[draws] = True
                curves[start].append(
                    (
                        (step - start + 1) * lookups_per_step,
                        float(mask.sum()) / rows,
                    )
                )
    return [
        ModifiedFractionCurve(
            start_step=start,
            steps=tuple(s for s, _ in curves[start]),
            fractions=tuple(f for _, f in curves[start]),
        )
        for start in starts
    ]


def interval_modified_experiment(
    rows: int = 200_000,
    alpha: float = 1.05,
    lookups_per_minute: int = 4_000,
    total_minutes: int = 360,
    interval_minutes: tuple[int, ...] = (10, 20, 30, 60),
    seed: int = 32,
) -> list[IntervalModifiedResult]:
    """Fig 6: fraction modified within each interval of a given length.

    For every interval length L, the run is cut into consecutive
    L-minute windows; the tracker resets at each window start, and the
    fraction marked at the window end is recorded. The paper's
    observation is that this fraction is almost constant across windows
    of equal length.
    """
    if total_minutes < max(interval_minutes):
        raise SimulationError("run shorter than the longest interval")
    sampler = ZipfianSampler(rows, alpha, seed)
    rng = np.random.default_rng(seed ^ 0x33CC)
    per_minute_draws = [
        sampler.sample((lookups_per_minute,), rng)
        for _ in range(total_minutes)
    ]
    results = []
    for length in interval_minutes:
        fractions = []
        for window_start in range(0, total_minutes - length + 1, length):
            mask = np.zeros(rows, dtype=bool)
            for minute in range(window_start, window_start + length):
                mask[per_minute_draws[minute]] = True
            fractions.append(float(mask.sum()) / rows)
        results.append(
            IntervalModifiedResult(
                interval_steps=length, fractions=tuple(fractions)
            )
        )
    return results
