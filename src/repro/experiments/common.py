"""Shared experiment harness: wiring, default configs, cached fixtures.

Benches, examples and integration tests all need "a training job with
Check-N-Run attached". :func:`build_experiment` assembles the full
stack — dataset, model, reader, simulated cluster, sharding plan,
trainer, object store, controller — from one :class:`ExperimentConfig`.

:func:`trained_embedding_matrix` provides the "checkpoint created after
training for a while" fixture the quantization experiments need
(paper section 5.2 evaluates on an 18-hour production checkpoint);
results are cached per configuration because several benches share it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import (
    CheckpointConfig,
    ClusterConfig,
    DataConfig,
    ExperimentConfig,
    ModelConfig,
    ReaderConfig,
    StorageConfig,
)
from ..core.controller import CheckNRun
from ..data.reader import ReaderMaster
from ..data.synthetic import SyntheticClickDataset
from ..distributed.clock import SimClock
from ..distributed.sharding import ShardingPlan, plan_auto
from ..distributed.topology import SimCluster
from ..distributed.trainer import SimTrainer
from ..model.dlrm import DLRM
from ..storage.backends import Backend
from ..storage.object_store import ObjectStore


@dataclass
class Experiment:
    """A fully wired training job under Check-N-Run."""

    config: ExperimentConfig
    clock: SimClock
    dataset: SyntheticClickDataset
    model: DLRM
    reader: ReaderMaster
    cluster: SimCluster
    plan: ShardingPlan
    trainer: SimTrainer
    store: ObjectStore
    controller: CheckNRun


def small_config(
    policy: str = "intermittent",
    quantizer: str = "adaptive",
    bit_width: int | None = 4,
    interval_batches: int = 20,
    num_tables: int = 4,
    rows_per_table: int = 2048,
    embedding_dim: int = 8,
    batch_size: int = 128,
    zipf_alpha: float = 1.05,
    keep_last: int = 2,
    num_nodes: int = 2,
    devices_per_node: int = 2,
) -> ExperimentConfig:
    """A seconds-scale configuration for tests and quick examples."""
    return ExperimentConfig(
        model=ModelConfig(
            num_tables=num_tables,
            rows_per_table=tuple([rows_per_table] * num_tables),
            embedding_dim=embedding_dim,
            bottom_mlp=(16, embedding_dim),
            top_mlp=(16, 1),
            hotness=4,
        ),
        data=DataConfig(batch_size=batch_size, zipf_alpha=zipf_alpha),
        reader=ReaderConfig(coordinated=True),
        cluster=ClusterConfig(
            num_nodes=num_nodes, devices_per_node=devices_per_node
        ),
        storage=StorageConfig(),
        checkpoint=CheckpointConfig(
            interval_batches=interval_batches,
            policy=policy,
            quantizer=quantizer,
            bit_width=bit_width,
            keep_last=keep_last,
        ),
    )


def paper_scale_config(
    policy: str = "intermittent",
    quantizer: str = "adaptive",
    bit_width: int | None = None,
    interval_batches: int = 60,
    rows_per_table: int = 65536,
    num_tables: int = 8,
) -> ExperimentConfig:
    """The benchmark configuration: paper topology, scaled-down tables.

    16 nodes x 8 GPUs like the paper; table sizes shrunk so a full run
    finishes in minutes while keeping the Zipf-skew regime that drives
    the modified-fraction curves.
    """
    return ExperimentConfig(
        model=ModelConfig(
            num_tables=num_tables,
            rows_per_table=tuple([rows_per_table] * num_tables),
            embedding_dim=16,
            bottom_mlp=(32, 16),
            top_mlp=(32, 16, 1),
            hotness=4,
        ),
        data=DataConfig(batch_size=512, zipf_alpha=1.05),
        reader=ReaderConfig(coordinated=True),
        cluster=ClusterConfig(),  # 16 x 8, paper defaults
        storage=StorageConfig(),
        checkpoint=CheckpointConfig(
            interval_batches=interval_batches,
            policy=policy,
            quantizer=quantizer,
            bit_width=bit_width,
        ),
    )


def build_experiment(
    config: ExperimentConfig,
    job_id: str = "job0",
    overlap_action: str = "skip_new",
    backend: Backend | None = None,
    store: ObjectStore | None = None,
    clock: SimClock | None = None,
) -> Experiment:
    """Wire the full stack from a config.

    The byte store comes from ``config.storage.backend`` via the
    :func:`~repro.storage.factory.make_backend` factory (in-memory by
    default; set ``BackendConfig(kind="file"/"mirrored"/"s3like")`` to
    exercise real persistence, replica-loss recovery or S3-style
    request costs). Passing ``backend`` overrides the factory with a
    pre-built instance. The fleet instead injects a pre-built ``store``
    (a job's scoped view of the shared store) and the job's own
    ``clock``.
    """
    clock = clock if clock is not None else SimClock()
    dataset = SyntheticClickDataset(config.model, config.data)
    model = DLRM(config.model)
    reader = ReaderMaster(dataset, config.reader)
    cluster = SimCluster(config.cluster)
    plan = plan_auto(config.model, cluster)
    trainer = SimTrainer(model, reader, cluster, plan, clock)
    if store is None:
        store = ObjectStore(config.storage, clock, backend=backend)
    controller = CheckNRun(
        trainer,
        reader,
        store,
        config.checkpoint,
        clock,
        job_id=job_id,
        overlap_action=overlap_action,
    )
    return Experiment(
        config=config,
        clock=clock,
        dataset=dataset,
        model=model,
        reader=reader,
        cluster=cluster,
        plan=plan,
        trainer=trainer,
        store=store,
        controller=controller,
    )


# ----------------------------------------------------------------------
# Cached trained-table fixture for the quantization experiments
# ----------------------------------------------------------------------

_TRAINED_CACHE: dict[tuple, np.ndarray] = {}


def trained_embedding_matrix(
    rows: int = 4096,
    dim: int = 16,
    train_batches: int = 150,
    num_tables: int = 4,
    seed: int = 11,
) -> np.ndarray:
    """Embedding rows from a genuinely trained DLRM checkpoint.

    Trains a small model on the synthetic click log, then concatenates
    every table's weights into one (rows_total, dim) matrix — the stand-
    in for the paper's "representative checkpoint created after training
    a production dataset for about 18 hours". Cached per argument tuple.
    """
    key = (rows, dim, train_batches, num_tables, seed)
    if key in _TRAINED_CACHE:
        return _TRAINED_CACHE[key]
    model_config = ModelConfig(
        num_tables=num_tables,
        rows_per_table=tuple([rows] * num_tables),
        embedding_dim=dim,
        bottom_mlp=(16, dim),
        top_mlp=(16, 1),
        hotness=4,
        seed=seed,
    )
    data_config = DataConfig(batch_size=256, seed=seed ^ 0xA5A5)
    dataset = SyntheticClickDataset(model_config, data_config)
    model = DLRM(model_config)
    for i in range(train_batches):
        model.train_step(dataset.batch(i))
    matrix = np.concatenate(
        [model.table_weight(t) for t in range(num_tables)], axis=0
    ).astype(np.float32)
    _TRAINED_CACHE[key] = matrix
    return matrix
