"""Quantization-error experiments (paper Figs 9, 10, 11).

All three figures evaluate quantizers on "one representative checkpoint
created after training a production dataset"; our stand-in is
:func:`~repro.experiments.common.trained_embedding_matrix` — rows from a
genuinely trained numpy DLRM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..quant.adaptive import greedy_range_search
from ..quant.error import mean_l2_error
from ..quant.registry import make_quantizer
from ..quant.uniform import quantization_l2_per_row


@dataclass(frozen=True)
class QuantErrorRow:
    """One (method, bit-width) bar of Fig 9."""

    method: str
    bits: int
    mean_l2: float


def quant_error_comparison(
    tensor: np.ndarray,
    bit_widths: tuple[int, ...] = (2, 3, 4, 8),
    kmeans_iterations: int = 15,
    adaptive_bins: int = 25,
    seed: int = 5,
) -> list[QuantErrorRow]:
    """Fig 9: mean l2 error of all four approaches per bit width."""
    rows: list[QuantErrorRow] = []
    for bits in bit_widths:
        for method in ("symmetric", "asymmetric", "kmeans", "adaptive"):
            quantizer = make_quantizer(
                method,
                bits=bits,
                num_bins=adaptive_bins,
                ratio=1.0,
                kmeans_iterations=kmeans_iterations,
                seed=seed,
            )
            recon = quantizer.dequantize(quantizer.quantize(tensor))
            rows.append(
                QuantErrorRow(method, bits, mean_l2_error(tensor, recon))
            )
    return rows


def _naive_error(tensor: np.ndarray, bits: int) -> float:
    xmin = tensor.min(axis=1).astype(np.float32)
    xmax = tensor.max(axis=1).astype(np.float32)
    return float(
        np.mean(quantization_l2_per_row(tensor, xmin, xmax, bits))
    )


@dataclass(frozen=True)
class ImprovementPoint:
    """One point of Figs 10/11: adaptive improvement over naive."""

    bits: int
    parameter: float  # num_bins or ratio
    improvement: float  # fractional l2-error reduction


def adaptive_bins_sweep(
    tensor: np.ndarray,
    bit_widths: tuple[int, ...] = (2, 3, 4),
    bins_values: tuple[int, ...] = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50),
) -> list[ImprovementPoint]:
    """Fig 10: improvement versus num_bins at ratio = 1."""
    points = []
    for bits in bit_widths:
        naive = _naive_error(tensor, bits)
        for bins in bins_values:
            result = greedy_range_search(tensor, bits, bins, 1.0)
            err = float(np.mean(result.errors))
            gain = (naive - err) / naive if naive > 0 else 0.0
            points.append(ImprovementPoint(bits, float(bins), gain))
    return points


def optimal_bins(
    points: list[ImprovementPoint], bits: int
) -> int:
    """The bins value with the best improvement for a bit width."""
    candidates = [p for p in points if p.bits == bits]
    best = max(candidates, key=lambda p: p.improvement)
    return int(best.parameter)


def adaptive_ratio_sweep(
    tensor: np.ndarray,
    bins_per_width: dict[int, int],
    ratios: tuple[float, ...] = (
        0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
    ),
) -> list[ImprovementPoint]:
    """Fig 11: improvement versus ratio at each width's optimal bins."""
    points = []
    for bits, bins in sorted(bins_per_width.items()):
        naive = _naive_error(tensor, bits)
        for ratio in ratios:
            result = greedy_range_search(tensor, bits, bins, ratio)
            err = float(np.mean(result.errors))
            gain = (naive - err) / naive if naive > 0 else 0.0
            points.append(ImprovementPoint(bits, ratio, gain))
    return points
