"""Check-N-Run: a checkpointing system for training deep learning
recommendation models — NSDI 2022 reproduction.

The public API re-exports the pieces a downstream user composes:

* configs (:mod:`repro.config`) — frozen dataclasses for every subsystem;
* the DLRM substrate (:mod:`repro.model`) and synthetic data
  (:mod:`repro.data`);
* the simulated cluster (:mod:`repro.distributed`) and object store
  (:mod:`repro.storage`);
* the Check-N-Run core (:mod:`repro.core`): controller, policies,
  tracker, snapshot, writer, restore;
* quantization (:mod:`repro.quant`) and failure machinery
  (:mod:`repro.failures`).

Quickstart::

    from repro.experiments import build_experiment, small_config

    exp = build_experiment(small_config())
    exp.controller.run_intervals(3)
    report = exp.controller.restore_latest()
"""

from .config import (
    CheckpointConfig,
    ClusterConfig,
    DataConfig,
    ExperimentConfig,
    FailureConfig,
    ModelConfig,
    ReaderConfig,
    StorageConfig,
)
from .core import CheckNRun
from .errors import ReproError
from .experiments import build_experiment, paper_scale_config, small_config
from .model import DLRM
from .quant import make_quantizer, mean_l2_error

__version__ = "1.0.0"

__all__ = [
    "CheckNRun",
    "CheckpointConfig",
    "ClusterConfig",
    "DLRM",
    "DataConfig",
    "ExperimentConfig",
    "FailureConfig",
    "ModelConfig",
    "ReaderConfig",
    "ReproError",
    "StorageConfig",
    "build_experiment",
    "make_quantizer",
    "mean_l2_error",
    "paper_scale_config",
    "small_config",
    "__version__",
]
