"""The simulated reader tier: master, workers, in-flight queues.

The paper's training pipeline (Fig 2) separates *readers* — hundreds of
nodes whose only job is saturating trainers with batches — from the
trainer cluster. Readers prefetch ahead of the trainer, so at any moment
some batches are "in flight": read from the dataset but not yet trained.

That gap is the checkpointing hazard of section 4.1: if a checkpoint
records the reader's own position, the in-flight batches are silently
skipped on resume; if it records the trainer's position without stopping
the readers, batches can be double-read. Check-N-Run's controller closes
the gap by telling the reader master *exactly how many batches to read*
per checkpoint interval (:meth:`ReaderMaster.begin_interval`), so that
when the interval ends nothing is in flight.

Both the coordinated and the uncoordinated behaviour are implemented so
the ablation bench (a03) can demonstrate the bug the protocol prevents.
"""

from __future__ import annotations

from collections import deque

from ..config import ReaderConfig
from ..errors import ReaderError, ReaderQuotaExceededError
from .batch import Batch
from .state import ReaderState
from .synthetic import SyntheticClickDataset


class ReaderWorker:
    """One reader node: serves the batch indices congruent to its id.

    Production readers shard the dataset; round-robin index striping is
    the simplest faithful analogue that still exercises a many-worker
    merge in the master.
    """

    def __init__(
        self,
        dataset: SyntheticClickDataset,
        worker_id: int,
        num_workers: int,
    ) -> None:
        if not 0 <= worker_id < num_workers:
            raise ReaderError(
                f"worker_id {worker_id} out of range for {num_workers}"
            )
        self._dataset = dataset
        self.worker_id = worker_id
        self.num_workers = num_workers
        self.batches_read = 0

    def owns(self, batch_index: int) -> bool:
        return batch_index % self.num_workers == self.worker_id

    def read(self, batch_index: int) -> Batch:
        if not self.owns(batch_index):
            raise ReaderError(
                f"worker {self.worker_id} asked for foreign batch "
                f"{batch_index}"
            )
        self.batches_read += 1
        return self._dataset.batch(batch_index)


class ReaderMaster:
    """Coordinates workers, owns the in-flight queue, tracks state.

    In coordinated mode (the Check-N-Run protocol) the master only reads
    while it holds quota; ``collect_state`` then observes an empty
    in-flight queue and the reader/trainer positions agree. In
    uncoordinated mode the master free-runs its prefetch and
    ``collect_state`` records the *reader's* position — ahead of the
    trainer's — reproducing the state-gap bug.
    """

    def __init__(
        self, dataset: SyntheticClickDataset, config: ReaderConfig
    ) -> None:
        self._dataset = dataset
        self.config = config
        self.workers = [
            ReaderWorker(dataset, i, config.num_workers)
            for i in range(config.num_workers)
        ]
        self._queue: deque[Batch] = deque()
        self._next_read_index = 0
        self._delivered = 0
        self._quota: int | None = 0 if config.coordinated else None
        self._paused = False

    # ------------------------------------------------------------------
    # Coordination protocol (Check-N-Run controller -> reader master)
    # ------------------------------------------------------------------

    def begin_interval(self, num_batches: int) -> None:
        """Grant quota to read exactly ``num_batches`` more batches."""
        if num_batches < 1:
            raise ReaderError("interval must contain at least one batch")
        if not self.config.coordinated:
            raise ReaderError(
                "begin_interval is only valid in coordinated mode"
            )
        self._quota = (self._quota or 0) + num_batches
        self._paused = False

    def pause(self) -> None:
        """Stop reading (controller stalls readers during state collection)."""
        self._paused = True

    def resume(self) -> None:
        self._paused = False

    # ------------------------------------------------------------------
    # Batch flow
    # ------------------------------------------------------------------

    def _may_read(self) -> bool:
        if self._paused:
            return False
        if self._quota is None:  # uncoordinated: free-running prefetch
            return True
        return self._quota > 0

    def _fill(self) -> None:
        while len(self._queue) < self.config.prefetch_depth and self._may_read():
            index = self._next_read_index
            worker = self.workers[index % self.config.num_workers]
            self._queue.append(worker.read(index))
            self._next_read_index += 1
            if self._quota is not None:
                self._quota -= 1

    def next_batch(self) -> Batch:
        """Deliver the next batch to the trainer."""
        self._fill()
        if not self._queue:
            if self.config.coordinated:
                raise ReaderQuotaExceededError(
                    "trainer requested a batch beyond the coordinated "
                    "quota; call begin_interval first"
                )
            raise ReaderError("reader is paused and its queue is empty")
        batch = self._queue.popleft()
        self._delivered += 1
        self._fill()  # keep prefetch warm, mirroring background workers
        return batch

    @property
    def in_flight(self) -> int:
        """Batches read but not yet delivered to the trainer."""
        return len(self._queue)

    @property
    def batches_delivered(self) -> int:
        return self._delivered

    # ------------------------------------------------------------------
    # State collection / resume
    # ------------------------------------------------------------------

    def collect_state(self) -> ReaderState:
        """Snapshot the reader's position for a checkpoint.

        Coordinated mode requires the in-flight queue to be empty (the
        protocol guarantees it at interval end); the recorded position
        then equals the trainer's. Uncoordinated mode records the
        reader's own (read-ahead) position — on resume, in-flight batches
        are lost, which is exactly the paper's trainer-reader gap.
        """
        if self.config.coordinated and self._queue:
            raise ReaderError(
                f"coordinated state collection with {len(self._queue)} "
                "in-flight batches; interval accounting is broken"
            )
        return ReaderState(
            next_batch_index=self._next_read_index,
            in_flight=len(self._queue),
            batches_delivered=self._delivered,
        )

    def restore(self, state: ReaderState) -> None:
        """Rewind the reader to a checkpointed state."""
        self._queue.clear()
        self._next_read_index = state.next_batch_index
        self._delivered = state.batches_delivered
        self._quota = 0 if self.config.coordinated else None
        self._paused = False
