"""The training batch value object."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReaderError


@dataclass
class Batch:
    """One batch of training samples.

    Attributes:
        dense: (batch, num_dense_features) fp32 features.
        sparse: per-table (batch, hotness) int64 index matrices.
        labels: (batch,) float32 binary click labels.
        batch_index: global position in the dataset's batch sequence —
            the unit the reader state is expressed in.
    """

    dense: np.ndarray
    sparse: list[np.ndarray]
    labels: np.ndarray
    batch_index: int

    def __post_init__(self) -> None:
        if self.dense.ndim != 2:
            raise ReaderError(
                f"dense features must be 2-D, got shape {self.dense.shape}"
            )
        batch = self.dense.shape[0]
        if self.labels.shape != (batch,):
            raise ReaderError(
                f"labels shape {self.labels.shape} != ({batch},)"
            )
        for i, idx in enumerate(self.sparse):
            if idx.ndim != 2 or idx.shape[0] != batch:
                raise ReaderError(
                    f"sparse[{i}] must be (batch, hotness), got {idx.shape}"
                )
        if self.batch_index < 0:
            raise ReaderError(f"negative batch_index {self.batch_index}")

    @property
    def num_samples(self) -> int:
        return int(self.dense.shape[0])

    @property
    def num_tables(self) -> int:
        return len(self.sparse)
