"""Synthetic Zipfian click-log generator — the training-data substrate.

The paper trains on production click logs whose categorical features are
heavily skewed: a few IDs are extremely hot, the long tail is cold. That
skew is what makes incremental checkpointing work (Figs 5/6: only ~26%
of rows touched per 30-minute interval, ~52% after 11B samples), so the
generator's central job is to reproduce it with per-table Zipfian index
distributions.

Labels come from a *planted* logistic model over the dense features and
a per-row quality score, so that training measurably reduces loss and
quantization-induced degradation (Fig 14) is observable.

Batches are generated *statelessly*: ``batch(i)`` derives its randomness
from ``(seed, i)``, so any reader can deterministically re-produce any
batch — the property the reader-state/resume machinery tests rely on.
"""

from __future__ import annotations

import numpy as np

from ..config import DataConfig, ModelConfig
from ..errors import ReaderError
from .batch import Batch


class ZipfianSampler:
    """Draws category IDs with Zipf(alpha) popularity over ``rows`` IDs.

    Sampling is inverse-CDF over the exact (finite) Zipf pmf:
    p(k) ~ 1 / (k + 1)^alpha for rank k. A fixed random permutation maps
    popularity ranks to table row ids so hot rows are scattered across
    the table the way hash-bucketed production IDs are.
    """

    def __init__(self, rows: int, alpha: float, seed: int) -> None:
        if rows < 1:
            raise ReaderError("sampler needs at least one row")
        if alpha <= 0:
            raise ReaderError("zipf alpha must be positive")
        self.rows = rows
        self.alpha = alpha
        ranks = np.arange(1, rows + 1, dtype=np.float64)
        pmf = ranks**-alpha
        pmf /= pmf.sum()
        self._cdf = np.cumsum(pmf)
        self._cdf[-1] = 1.0  # guard against float round-off
        rng = np.random.default_rng(seed)
        self._rank_to_row = rng.permutation(rows)

    def sample(self, shape: tuple[int, ...], rng: np.random.Generator):
        """Draw row ids of the given shape."""
        uniforms = rng.random(size=shape)
        ranks = np.searchsorted(self._cdf, uniforms, side="right")
        return self._rank_to_row[ranks].astype(np.int64)

    def hot_fraction(self, top_fraction: float) -> float:
        """Probability mass captured by the hottest ``top_fraction`` rows."""
        if not 0 < top_fraction <= 1:
            raise ReaderError("top_fraction must be in (0, 1]")
        count = max(1, int(self.rows * top_fraction))
        return float(self._cdf[count - 1])


class SyntheticClickDataset:
    """Deterministic, stateless synthetic click-log stream.

    The dataset is conceptually infinite (batch indices are unbounded);
    experiments decide how many batches constitute a "run".
    """

    def __init__(self, model_config: ModelConfig, data_config: DataConfig):
        self.model_config = model_config
        self.data_config = data_config
        base_seed = data_config.seed
        self.samplers = [
            ZipfianSampler(
                rows,
                data_config.zipf_alpha,
                seed=base_seed + 31 * table_id,
            )
            for table_id, rows in enumerate(model_config.rows_per_table)
        ]
        planted_rng = np.random.default_rng(base_seed ^ 0xBEEF)
        self._dense_weights = planted_rng.normal(
            0.0,
            data_config.dense_signal_scale
            / np.sqrt(model_config.num_dense_features),
            size=model_config.num_dense_features,
        )
        # A per-table "quality" signal per row links sparse IDs to
        # labels, so embeddings carry real information worth learning.
        self._row_quality = [
            planted_rng.normal(
                0.0, data_config.sparse_signal_scale, size=rows
            )
            for rows in model_config.rows_per_table
        ]
        self._bias = -1.5  # pushes base CTR into a realistic ~0.2 zone

    def _rng_for_batch(self, batch_index: int) -> np.random.Generator:
        return np.random.default_rng(
            (self.data_config.seed * 0x9E3779B1 + batch_index) & 0x7FFFFFFF
        )

    def batch(self, batch_index: int) -> Batch:
        """Generate the ``batch_index``-th batch (stateless, repeatable)."""
        if batch_index < 0:
            raise ReaderError(f"negative batch index {batch_index}")
        cfg = self.model_config
        rng = self._rng_for_batch(batch_index)
        size = self.data_config.batch_size

        dense = rng.normal(
            0.0, 1.0, size=(size, cfg.num_dense_features)
        ).astype(np.float32)
        sparse = [
            sampler.sample((size, cfg.hotness), rng)
            for sampler in self.samplers
        ]

        score = dense @ self._dense_weights + self._bias
        for table_id, indices in enumerate(sparse):
            score = score + self._row_quality[table_id][indices].mean(axis=1)
        prob = 1.0 / (1.0 + np.exp(-score))
        labels = (rng.random(size) < prob).astype(np.float32)
        if self.data_config.label_noise > 0:
            flips = rng.random(size) < self.data_config.label_noise
            labels = np.where(flips, 1.0 - labels, labels).astype(np.float32)

        return Batch(
            dense=dense, sparse=sparse, labels=labels,
            batch_index=batch_index,
        )

    def batches(self, start: int, count: int) -> list[Batch]:
        """Materialise ``count`` consecutive batches from ``start``."""
        if count < 0:
            raise ReaderError(f"negative batch count {count}")
        return [self.batch(i) for i in range(start, start + count)]

    def eval_batches(self, count: int, offset: int = 1 << 30) -> list[Batch]:
        """A held-out evaluation stream (disjoint batch-index range)."""
        return self.batches(offset, count)

    @property
    def samples_per_batch(self) -> int:
        return self.data_config.batch_size
