"""Data substrate: synthetic click logs, batches, the reader tier."""

from .batch import Batch
from .reader import ReaderMaster, ReaderWorker
from .state import ReaderState, TrainerProgress
from .synthetic import SyntheticClickDataset, ZipfianSampler

__all__ = [
    "Batch",
    "ReaderMaster",
    "ReaderState",
    "ReaderWorker",
    "SyntheticClickDataset",
    "TrainerProgress",
    "ZipfianSampler",
]
