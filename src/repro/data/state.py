"""Reader and trainer state records carried inside checkpoints.

Section 4.1: a checkpoint must include the reader state ("which parts
have been read") so a resumed run continues on the same dataset without
double-training or skipping samples. These records serialize to plain
dicts for embedding in the checkpoint manifest.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..errors import ReaderError


@dataclass(frozen=True)
class ReaderState:
    """Where the reader tier stands in the dataset.

    ``next_batch_index`` is the first batch *not yet delivered* to the
    trainer; ``in_flight`` counts batches read from the dataset but not
    consumed — the trainer-reader gap the coordination protocol drives
    to zero before state collection.
    """

    next_batch_index: int
    in_flight: int
    batches_delivered: int

    def __post_init__(self) -> None:
        if self.next_batch_index < 0:
            raise ReaderError("next_batch_index must be >= 0")
        if self.in_flight < 0:
            raise ReaderError("in_flight must be >= 0")
        if self.batches_delivered < 0:
            raise ReaderError("batches_delivered must be >= 0")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ReaderState":
        return cls(
            next_batch_index=int(data["next_batch_index"]),
            in_flight=int(data["in_flight"]),
            batches_delivered=int(data["batches_delivered"]),
        )


@dataclass(frozen=True)
class TrainerProgress:
    """Trainer-side progress metadata stored alongside the model state."""

    batches_trained: int
    samples_trained: int
    sim_time_s: float

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TrainerProgress":
        return cls(
            batches_trained=int(data["batches_trained"]),
            samples_trained=int(data["samples_trained"]),
            sim_time_s=float(data["sim_time_s"]),
        )
