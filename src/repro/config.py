"""Frozen configuration dataclasses for every subsystem.

Configs are immutable value objects. Each validates itself on construction
and raises :class:`repro.errors.ConfigError` on inconsistent values, so a
bad experiment setup fails before any simulation time is spent.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from .errors import ConfigError

#: Bytes in one mebibyte / gibibyte, used throughout the simulators.
MiB = 1024 * 1024
GiB = 1024 * MiB


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class ModelConfig:
    """Shape of the DLRM model.

    The defaults describe the small "laptop-scale" model used by the test
    suite; the benchmark harness scales ``rows_per_table`` up to reproduce
    the paper's curves.
    """

    num_tables: int = 8
    rows_per_table: tuple[int, ...] = ()
    embedding_dim: int = 16
    num_dense_features: int = 13
    bottom_mlp: tuple[int, ...] = (32, 16)
    top_mlp: tuple[int, ...] = (32, 16, 1)
    hotness: int = 4
    seed: int = 0x5EED

    def __post_init__(self) -> None:
        if not self.rows_per_table:
            object.__setattr__(
                self, "rows_per_table", tuple([4096] * self.num_tables)
            )
        _require(self.num_tables >= 1, "num_tables must be >= 1")
        _require(
            len(self.rows_per_table) == self.num_tables,
            "rows_per_table must have one entry per table",
        )
        _require(
            all(r >= 1 for r in self.rows_per_table),
            "every table needs at least one row",
        )
        _require(self.embedding_dim >= 1, "embedding_dim must be >= 1")
        _require(self.num_dense_features >= 1, "need at least 1 dense feature")
        _require(self.hotness >= 1, "hotness (multi-hot lookups) must be >= 1")
        _require(
            self.bottom_mlp[-1] == self.embedding_dim,
            "bottom MLP must project dense features to embedding_dim "
            f"({self.bottom_mlp[-1]} != {self.embedding_dim})",
        )
        _require(self.top_mlp[-1] == 1, "top MLP must end in a single logit")

    @property
    def total_embedding_rows(self) -> int:
        """Total embedding rows across all tables."""
        return sum(self.rows_per_table)

    @property
    def embedding_bytes(self) -> int:
        """fp32 bytes held in embedding tables (excludes optimizer state)."""
        return self.total_embedding_rows * self.embedding_dim * 4

    def scaled(self, factor: float) -> "ModelConfig":
        """Return a copy with every table's row count scaled by ``factor``."""
        _require(factor > 0, "scale factor must be positive")
        rows = tuple(max(1, int(r * factor)) for r in self.rows_per_table)
        return replace(self, rows_per_table=rows)


@dataclass(frozen=True)
class DataConfig:
    """Synthetic click-log generator settings.

    ``zipf_alpha`` controls categorical access skew; values slightly above
    1.0 reproduce the paper's sub-linear modified-fraction growth (Fig 5).
    """

    batch_size: int = 256
    zipf_alpha: float = 1.05
    dense_noise: float = 0.1
    label_noise: float = 0.05
    #: Scale of the planted dense-feature signal in the label logit.
    dense_signal_scale: float = 1.0
    #: Scale of the planted per-row (sparse) signal in the label logit.
    #: Production CTR labels are sparse-dominated; raise this relative
    #: to ``dense_signal_scale`` to reproduce that regime (Fig 14).
    sparse_signal_scale: float = 0.5
    seed: int = 0xDA7A

    def __post_init__(self) -> None:
        _require(self.batch_size >= 1, "batch_size must be >= 1")
        _require(self.zipf_alpha > 0.0, "zipf_alpha must be positive")
        _require(0.0 <= self.label_noise < 0.5, "label_noise in [0, 0.5)")
        _require(self.dense_signal_scale >= 0.0, "dense scale >= 0")
        _require(self.sparse_signal_scale >= 0.0, "sparse scale >= 0")


@dataclass(frozen=True)
class ReaderConfig:
    """Simulated reader-tier settings (separate cluster in the paper)."""

    num_workers: int = 4
    prefetch_depth: int = 8
    coordinated: bool = True

    def __post_init__(self) -> None:
        _require(self.num_workers >= 1, "need at least one reader worker")
        _require(self.prefetch_depth >= 1, "prefetch_depth must be >= 1")


@dataclass(frozen=True)
class ClusterConfig:
    """Simulated training cluster: nodes x devices, memories, copy paths.

    Defaults mirror the paper's clusters (16 nodes x 8 GPUs) scaled only in
    memory sizes; the per-link constants below are the calibration knobs
    described in DESIGN.md section 7.
    """

    num_nodes: int = 16
    devices_per_node: int = 8
    hbm_bytes_per_device: int = 32 * GiB
    host_dram_bytes: int = 1536 * GiB
    gpu_to_host_bandwidth: float = 20.0 * GiB  # bytes/sec per node
    snapshot_fixed_overhead_s: float = 0.25
    fabric_bandwidth: float = 100.0 * GiB  # bytes/sec per link
    fabric_latency_s: float = 5e-6
    #: Intra-node (NVSwitch/NVLink-class) link parameters, used when
    #: ``hierarchical_comm`` is enabled (paper section 6: "NVSwitch and
    #: NVLinks" inside nodes, scale-out fabric across them).
    intra_node_bandwidth: float = 300.0 * GiB
    intra_node_latency_s: float = 1e-6
    hierarchical_comm: bool = False
    step_compute_time_s: float = 0.12  # synchronous iteration compute time

    def __post_init__(self) -> None:
        _require(self.num_nodes >= 1, "num_nodes must be >= 1")
        _require(self.devices_per_node >= 1, "devices_per_node must be >= 1")
        _require(self.hbm_bytes_per_device > 0, "device memory must be > 0")
        _require(self.gpu_to_host_bandwidth > 0, "copy bandwidth must be > 0")
        _require(self.fabric_bandwidth > 0, "fabric bandwidth must be > 0")
        _require(
            self.intra_node_bandwidth > 0,
            "intra-node bandwidth must be > 0",
        )
        _require(self.step_compute_time_s > 0, "step time must be positive")

    @property
    def world_size(self) -> int:
        """Total simulated devices."""
        return self.num_nodes * self.devices_per_node


#: Valid backend kinds for the BackendConfig factory
#: (see repro.storage.factory.make_backend).
BACKEND_KINDS = ("memory", "file", "mirrored", "s3like")

#: Valid cache-tier write policies (see repro.storage.cache).
CACHE_POLICIES = ("write_back", "write_through")


@dataclass(frozen=True)
class BackendConfig:
    """Which byte backend a store uses, and its request-cost knobs.

    ``kind`` selects the backend class; the remaining fields only apply
    where they make sense (``root`` for ``file``, ``replicas`` for
    ``mirrored``, the per-op-class latencies / multipart / ranged-GET
    knobs for ``s3like``). In-process kinds keep the legacy
    config-derived timing (one fixed latency + link bandwidths);
    ``s3like`` owns per-class request latencies, optional jitter and
    tail inflation, multipart upload and ranged GETs.
    """

    kind: str = "memory"
    #: Directory for the ``file`` backend (required for that kind).
    root: str | None = None
    #: Synchronous replicas for the ``mirrored`` kind.
    replicas: int = 2
    # -- s3like per-op-class request latencies (seconds) ---------------
    put_latency_s: float = 0.030
    get_latency_s: float = 0.020
    list_latency_s: float = 0.040
    delete_latency_s: float = 0.015
    head_latency_s: float = 0.010
    #: LIST pays this much per key returned on top of its base latency.
    list_per_key_s: float = 0.0002
    #: Uniform extra request latency in [0, jitter_s); 0 = deterministic.
    jitter_s: float = 0.0
    #: Probability a request is a tail straggler, and the base-latency
    #: multiplier it then pays.
    tail_prob: float = 0.0
    tail_factor: float = 4.0
    # -- multipart / ranged GET ----------------------------------------
    #: Objects larger than this upload as multipart parts of this size
    #: (None = single-shot PUTs only).
    part_size_bytes: int | None = None
    #: Parallel request lanes for multipart parts / ranged sub-GETs.
    multipart_fanout: int = 4
    #: GETs larger than this split into ranged sub-GETs (None = whole).
    range_get_bytes: int | None = None
    #: Seed for the backend's jitter/tail RNG.
    seed: int = 0x53AC
    # -- transient-failure injection (s3like) --------------------------
    #: Per-request probability that a request of the given op class
    #: fails transiently (throttle/5xx) before touching any data. The
    #: transfer engine's retry loop re-issues failed requests; draws
    #: come from a dedicated RNG so runs stay deterministic under
    #: ``failure_seed``. Part uploads and multipart completions count
    #: as PUT-class requests.
    put_failure_prob: float = 0.0
    get_failure_prob: float = 0.0
    list_failure_prob: float = 0.0
    delete_failure_prob: float = 0.0
    head_failure_prob: float = 0.0
    #: Seed for the failure-injection RNG (separate from the jitter
    #: ``seed``, so the injected failure *sequence* is reproducible on
    #: its own; note that each retried attempt still consumes a jitter
    #: draw, as a re-issued request would).
    failure_seed: int = 0xFA17
    # -- near/far cache tier -------------------------------------------
    #: Capacity of the NVMe-class near tier layered over this backend
    #: (see repro.storage.cache.CacheTierBackend). 0 disables the tier
    #: entirely — the factory returns the bare backend and timing stays
    #: bit-identical to a cache-free run.
    cache_bytes: int = 0
    #: Cache write policy: ``write_back`` acks at near-tier cost and
    #: flushes dirty objects asynchronously; ``write_through`` writes
    #: the far tier synchronously and only accelerates reads.
    cache_policy: str = "write_back"

    def __post_init__(self) -> None:
        _require(
            self.kind in BACKEND_KINDS,
            f"unknown backend kind {self.kind!r}; valid: {BACKEND_KINDS}",
        )
        _require(self.replicas >= 1, "replicas must be >= 1")
        for name in (
            "put_latency_s",
            "get_latency_s",
            "list_latency_s",
            "delete_latency_s",
            "head_latency_s",
            "list_per_key_s",
            "jitter_s",
        ):
            _require(
                getattr(self, name) >= 0, f"{name} must be >= 0"
            )
        _require(0.0 <= self.tail_prob <= 1.0, "tail_prob in [0, 1]")
        _require(self.tail_factor >= 1.0, "tail_factor must be >= 1")
        if self.part_size_bytes is not None:
            _require(
                self.part_size_bytes >= 1,
                "part_size_bytes must be positive",
            )
        _require(self.multipart_fanout >= 1, "multipart_fanout >= 1")
        if self.range_get_bytes is not None:
            _require(
                self.range_get_bytes >= 1,
                "range_get_bytes must be positive",
            )
        for name in (
            "put_failure_prob",
            "get_failure_prob",
            "list_failure_prob",
            "delete_failure_prob",
            "head_failure_prob",
        ):
            _require(
                0.0 <= getattr(self, name) <= 1.0,
                f"{name} must be in [0, 1]",
            )
        _require(self.cache_bytes >= 0, "cache_bytes must be >= 0")
        _require(
            self.cache_policy in CACHE_POLICIES,
            f"unknown cache policy {self.cache_policy!r}; "
            f"valid: {CACHE_POLICIES}",
        )

    @property
    def failure_probs(self) -> dict[str, float]:
        """Per-op-class transient-failure probabilities (only nonzero)."""
        probs = {
            "PUT": self.put_failure_prob,
            "GET": self.get_failure_prob,
            "LIST": self.list_failure_prob,
            "DELETE": self.delete_failure_prob,
            "HEAD": self.head_failure_prob,
        }
        return {op: p for op, p in probs.items() if p > 0.0}


@dataclass(frozen=True)
class StorageConfig:
    """Remote object-store simulation settings."""

    write_bandwidth: float = 1.0 * GiB  # bytes/sec, aggregate
    read_bandwidth: float = 2.0 * GiB
    replication_factor: int = 3
    capacity_bytes: int | None = None
    latency_s: float = 0.010  # per-operation fixed latency
    #: Transfer-engine retry budget for transient request failures: a
    #: request is re-issued up to this many times before the failure
    #: becomes permanent (:class:`~repro.errors.RetriesExhaustedError`).
    max_retries: int = 5
    #: Base backoff before the first retry; doubles per attempt
    #: (exponential backoff in simulated seconds).
    retry_backoff_s: float = 0.02
    #: Byte backend selection + request-cost knobs. In-process kinds
    #: inherit the flat latency/bandwidth timing above; the ``s3like``
    #: kind carries its own per-op-class cost models.
    backend: BackendConfig = field(default_factory=BackendConfig)

    def __post_init__(self) -> None:
        _require(self.write_bandwidth > 0, "write bandwidth must be > 0")
        _require(self.read_bandwidth > 0, "read bandwidth must be > 0")
        _require(self.replication_factor >= 1, "replication factor >= 1")
        _require(self.max_retries >= 0, "max_retries must be >= 0")
        _require(self.retry_backoff_s >= 0, "retry_backoff_s must be >= 0")
        if self.capacity_bytes is not None:
            _require(self.capacity_bytes > 0, "capacity must be positive")
        if isinstance(self.backend, dict):
            # Deserialised configs arrive with a nested plain dict.
            object.__setattr__(
                self, "backend", BackendConfig(**self.backend)
            )
        _require(
            isinstance(self.backend, BackendConfig),
            "backend must be a BackendConfig",
        )


#: Valid checkpoint policy names (see repro.core.policies).
POLICY_NAMES = ("full", "one_shot", "consecutive", "intermittent")

#: Valid quantizer names (see repro.quant.registry).
QUANTIZER_NAMES = (
    "none",
    "float16",
    "symmetric",
    "asymmetric",
    "adaptive",
    "kmeans",
)


@dataclass(frozen=True)
class CheckpointConfig:
    """Check-N-Run behaviour: interval, policy, quantization, retention."""

    interval_batches: int = 100
    interval_seconds: float | None = 1800.0  # paper default: 30 minutes
    policy: str = "intermittent"
    quantizer: str = "adaptive"
    bit_width: int | None = None  # None => dynamic selection (section 6.2.1)
    num_bins: int = 25
    ratio: float = 1.0
    chunk_rows: int = 65536
    keep_last: int = 2
    #: Storm-aware retention: bound on the newest checkpoint's restore
    #: chain length. When the chain reaches the bound, the controller
    #: refreshes the baseline (takes a full) instead of extending it —
    #: a restore storm then never re-reads more than this many
    #: checkpoints per job. None = unbounded (chain-depth retention).
    max_chain_length: int | None = None
    expected_restores: int = 1
    quantize_optimizer_state: bool = True
    track_in_forward_pass: bool = True
    #: Store per-row quantization bounds as fp16 (the paper's
    #: future-work metadata optimisation; saves 25-33% of checkpoint
    #: bytes at negligible error — see ablation a06).
    compact_metadata: bool = False

    def __post_init__(self) -> None:
        _require(self.interval_batches >= 1, "interval_batches must be >= 1")
        _require(
            self.policy in POLICY_NAMES,
            f"unknown policy {self.policy!r}; valid: {POLICY_NAMES}",
        )
        _require(
            self.quantizer in QUANTIZER_NAMES,
            f"unknown quantizer {self.quantizer!r}; valid: {QUANTIZER_NAMES}",
        )
        if self.bit_width is not None:
            _require(
                1 <= self.bit_width <= 8,
                "bit_width must be in [1, 8] (sub-byte packed codes)",
            )
        _require(self.num_bins >= 1, "num_bins must be >= 1")
        _require(0.0 < self.ratio <= 1.0, "ratio must be in (0, 1]")
        _require(self.chunk_rows >= 1, "chunk_rows must be >= 1")
        _require(self.keep_last >= 1, "must retain at least one checkpoint")
        if self.max_chain_length is not None:
            _require(
                self.max_chain_length >= 1,
                "max_chain_length must be >= 1",
            )
        _require(self.expected_restores >= 0, "expected_restores must be >= 0")


@dataclass(frozen=True)
class FailureConfig:
    """Failure-model settings for the fleet simulation (Fig 3)."""

    mean_time_to_failure_s: float = 6.0 * 3600.0
    weibull_shape: float = 0.65
    min_failure_s: float = 300.0  # jobs failing under 5 min are filtered
    seed: int = 0xFA11

    def __post_init__(self) -> None:
        _require(self.mean_time_to_failure_s > 0, "MTTF must be positive")
        _require(self.weibull_shape > 0, "weibull shape must be positive")
        _require(self.min_failure_s >= 0, "min_failure_s must be >= 0")


#: Valid correlated-failure domain kinds (see repro.failures.domains).
STORM_DOMAINS = ("rack", "power")


@dataclass(frozen=True)
class FleetConfig:
    """A multi-job fleet sharing one object store (paper Figs 15-17).

    Per-job heterogeneity is sampled from the choice tuples below with
    the fleet ``seed``, mimicking the spread of model sizes, intervals
    and quantization policies across Meta's training fleet. ``storage``
    configures the single *shared* store every job writes through;
    ``failures`` drives per-job crash injection from the Fig 3 CDF.

    ``priority_mix`` splits the fleet into paper-style priority classes:
    that fraction of jobs runs as tier ``prod`` (strict link priority,
    may preempt experimental staged writes), the rest as
    ``experimental``. ``storm_domain`` arms one correlated failure —
    a whole rack or a power domain dies at once mid-run — forcing every
    affected job to restore through the shared link simultaneously.
    """

    num_jobs: int = 8
    intervals_per_job: int = 4
    seed: int = 0xF1EE7
    batch_size: int = 64
    #: Paper embedding vectors are ~64 wide; 16 keeps runs fast while
    #: stopping per-row quantization metadata from dominating savings.
    embedding_dim: int = 16

    # Heterogeneity distributions (uniform choice unless weighted).
    #: Tables must dwarf per-interval row touches or every interval
    #: modifies everything and increments degenerate to fulls.
    rows_per_table_choices: tuple[int, ...] = (2048, 4096, 8192)
    num_tables_choices: tuple[int, ...] = (2, 3, 4)
    interval_batches_choices: tuple[int, ...] = (8, 12, 16)
    zipf_alpha: float = 1.1
    policy_choices: tuple[str, ...] = (
        "intermittent",
        "one_shot",
        "consecutive",
    )
    policy_weights: tuple[float, ...] = (0.5, 0.25, 0.25)
    #: (quantizer, bit_width) pairs; bit_width is ignored by
    #: ``none``/``float16``. The mix mirrors the paper's restore-count
    #: bands: mostly 4-bit adaptive, some 8-bit, a few high-precision.
    quantizer_choices: tuple[str, ...] = (
        "adaptive",
        "adaptive",
        "asymmetric",
        "float16",
        "none",
    )
    bit_width_choices: tuple[int, ...] = (4, 4, 8, 8, 8)
    weight_choices: tuple[float, ...] = (1.0,)

    #: Stagger job starts over this window so checkpoint triggers do
    #: not all align on the shared link.
    stagger_s: float = 30.0
    keep_last: int = 2
    #: Deprecated: the legacy fixed cap on simultaneous checkpoint
    #: writes. A non-None value maps onto the admission controller's
    #: *static* mode (and emits a :class:`DeprecationWarning`), so
    #: existing configs and recorded baselines stay reproducible.
    #: Prefer ``admission_mode="static"`` + this cap, or "dynamic".
    max_concurrent_writes: int | None = None
    #: Admission-control mode for checkpoint triggers on the shared
    #: store: ``None`` (auto: "static" when ``max_concurrent_writes``
    #: is set, else "none"), ``"none"`` (admit everything),
    #: ``"static"`` (fixed concurrent-write cap), or ``"dynamic"``
    #: (backlog-driven: defer an experimental job's trigger when the
    #: link's projected queue delay exceeds ``admission_backlog_factor``
    #: x the job's checkpoint interval; prod jobs are always admitted).
    admission_mode: str | None = None
    #: Dynamic admission threshold, in checkpoint intervals of backlog.
    admission_backlog_factor: float = 1.0
    #: Read-side admission mode for restores on the shared store:
    #: ``"none"`` (every restore starts immediately) or ``"dynamic"``
    #: (an experimental job's restore is *paced* — its start deferred
    #: until the link's projected restore delay, write backlog plus
    #: queued read parts, falls to ``restore_backlog_factor`` x the
    #: job's checkpoint interval; prod restores always start at once,
    #: preserving the storm's prod-first drain).
    restore_admission: str = "none"
    #: Read-side pacing threshold, in checkpoint intervals of backlog.
    restore_backlog_factor: float = 1.0
    #: Per-job live physical-byte quota on the shared store.
    per_job_quota_bytes: int | None = None

    inject_failures: bool = True
    max_failures_per_job: int = 1

    #: Fraction of jobs sampled into the ``prod`` priority tier
    #: (0.0 = the whole fleet is experimental; tiering disabled).
    priority_mix: float = 0.0
    #: Whether prod-tier traffic may preempt (abort-and-requeue) an
    #: experimental job's staged checkpoint write.
    preempt_staged_writes: bool = True
    #: Minimum link backlog (seconds a prod transfer would have to
    #: queue) before preemption fires; 0 preempts on any contention.
    preempt_wait_s: float = 0.1
    #: Correlated failure domain to strike mid-run: ``"rack"`` (one
    #: rack of ``rack_size`` jobs), ``"power"`` (the whole fleet), or
    #: None (independent failures only).
    storm_domain: str | None = None
    #: Jobs per rack when assigning rack failure domains.
    rack_size: int = 4
    #: Fleet progress fraction (completed intervals / target) at which
    #: the armed storm fires.
    storm_at_fraction: float = 0.5
    #: Retention flavour for the fleet's jobs: ``"chain_depth"`` (keep
    #: the newest ``keep_last`` checkpoints and whatever their chains
    #: reference — chains grow as long as the policy lets them) or
    #: ``"storm_aware"`` (additionally bound every job's restore chain
    #: at ``storm_chain_limit`` by forcing baseline refreshes, so a
    #: correlated storm re-reads short chains). Storm-aware retention
    #: requires an armed ``storm_domain`` — it trades write traffic for
    #: storm read traffic, which only pays off in a storm-prone fleet.
    retention_mode: str = "chain_depth"
    #: Restore-chain length bound under storm-aware retention.
    storm_chain_limit: int = 2
    #: Derive each job's storm-chain limit adaptively from its expected
    #: storm read cost vs baseline-refresh write cost (CPR-style)
    #: instead of the fixed ``storm_chain_limit`` bound. Only
    #: meaningful under ``retention_mode="storm_aware"``.
    storm_chain_adaptive: bool = False
    #: Chunk-read order fleet restores use: ``"manifest"`` (stored
    #: layout) or ``"hot_first"`` (dense state + hot chunks first, so
    #: ``time_to_first_batch_s`` lands before the cold tail).
    restore_order: str = "manifest"

    # -- peer-memory replication tier ----------------------------------
    #: Number of peer jobs each job mirrors its per-step delta to
    #: (0 disables replication; the run is bit-identical to a
    #: replication-free fleet). With replication on, the object store
    #: only receives retention-boundary baseline flushes.
    replicate_k: int = 0
    #: Capacity of each hosted replica ring (bytes). A delta that no
    #: longer fits evicts the oldest entries by folding them into the
    #: ring's materialized anchor.
    peer_ring_bytes: int = 2 * MiB
    #: Every this-many intervals the owner flushes a full baseline to
    #: the object store and re-bases its replica rings.
    baseline_flush_intervals: int = 2
    #: Peer-to-peer link bandwidth (bytes/sec) for delta mirroring and
    #: replica reads — host memory over the training fabric, far
    #: faster than the storage link.
    peer_bandwidth: float = 8.0 * GiB
    #: Fixed per-transfer latency of the peer link.
    peer_latency_s: float = 0.0005
    #: Cross-rack penalty: a transfer to/from a peer in another rack
    #: divides bandwidth and multiplies latency by this factor.
    peer_cross_rack_factor: float = 2.0

    #: Silent bit-rot probability per PUT-class write (chunk, dense,
    #: manifest, multipart part): the shared backend is wrapped in a
    #: :class:`~repro.storage.backends.CrashingBackend` that flips one
    #: seeded byte of the payload. The write *succeeds* — only digest
    #: verification at restore/scan time catches the damage, so storms
    #: over a rotted fleet exercise the resume planner's fallback path.
    bitrot_prob: float = 0.0
    #: Seed for the deterministic bit-rot byte flips.
    bitrot_seed: int = 0xB17F

    storage: StorageConfig = field(default_factory=StorageConfig)
    failures: FailureConfig = field(default_factory=FailureConfig)

    def __post_init__(self) -> None:
        _require(self.num_jobs >= 1, "num_jobs must be >= 1")
        _require(self.intervals_per_job >= 1, "intervals_per_job >= 1")
        _require(self.batch_size >= 1, "batch_size must be >= 1")
        _require(self.embedding_dim >= 1, "embedding_dim must be >= 1")
        for name, choices in (
            ("rows_per_table_choices", self.rows_per_table_choices),
            ("num_tables_choices", self.num_tables_choices),
            ("interval_batches_choices", self.interval_batches_choices),
            ("policy_choices", self.policy_choices),
            ("quantizer_choices", self.quantizer_choices),
            ("bit_width_choices", self.bit_width_choices),
            ("weight_choices", self.weight_choices),
        ):
            _require(len(choices) >= 1, f"{name} must be non-empty")
        _require(
            all(p in POLICY_NAMES for p in self.policy_choices),
            f"policy_choices must be drawn from {POLICY_NAMES}",
        )
        _require(
            all(q in QUANTIZER_NAMES for q in self.quantizer_choices),
            f"quantizer_choices must be drawn from {QUANTIZER_NAMES}",
        )
        _require(
            len(self.policy_weights) == len(self.policy_choices),
            "policy_weights must pair with policy_choices",
        )
        _require(
            all(w > 0 for w in self.policy_weights),
            "policy weights must be positive",
        )
        _require(
            len(self.bit_width_choices) == len(self.quantizer_choices),
            "bit_width_choices must pair with quantizer_choices",
        )
        _require(
            all(1 <= b <= 8 for b in self.bit_width_choices),
            "bit widths must be in [1, 8]",
        )
        _require(
            all(w > 0 for w in self.weight_choices),
            "stream weights must be positive",
        )
        _require(self.stagger_s >= 0, "stagger_s must be >= 0")
        _require(self.keep_last >= 1, "keep_last must be >= 1")
        if self.max_concurrent_writes is not None:
            _require(
                self.max_concurrent_writes >= 1,
                "max_concurrent_writes must be >= 1",
            )
            if self.admission_mode is None:
                import warnings

                warnings.warn(
                    "FleetConfig.max_concurrent_writes is deprecated; "
                    "it now maps to the transfer engine's static "
                    "admission mode (admission_mode='static'). Prefer "
                    "setting admission_mode explicitly.",
                    DeprecationWarning,
                    stacklevel=2,
                )
        _require(
            self.admission_mode in (None, "none", "static", "dynamic"),
            f"unknown admission_mode {self.admission_mode!r}; valid: "
            "None, 'none', 'static', 'dynamic'",
        )
        if self.admission_mode == "static":
            _require(
                self.max_concurrent_writes is not None,
                "static admission mode needs max_concurrent_writes",
            )
        _require(
            self.admission_backlog_factor > 0,
            "admission_backlog_factor must be > 0",
        )
        _require(
            self.restore_admission in ("none", "dynamic"),
            f"unknown restore_admission {self.restore_admission!r}; "
            "valid: 'none', 'dynamic'",
        )
        _require(
            self.restore_backlog_factor > 0,
            "restore_backlog_factor must be > 0",
        )
        if self.per_job_quota_bytes is not None:
            _require(
                self.per_job_quota_bytes > 0,
                "per_job_quota_bytes must be positive",
            )
        _require(
            self.max_failures_per_job >= 0,
            "max_failures_per_job must be >= 0",
        )
        _require(
            0.0 <= self.priority_mix <= 1.0,
            "priority_mix must be in [0, 1]",
        )
        _require(self.preempt_wait_s >= 0, "preempt_wait_s must be >= 0")
        if self.storm_domain is not None:
            _require(
                self.storm_domain in STORM_DOMAINS,
                f"unknown storm domain {self.storm_domain!r}; "
                f"valid: {STORM_DOMAINS}",
            )
        _require(self.rack_size >= 1, "rack_size must be >= 1")
        _require(
            0.0 < self.storm_at_fraction < 1.0,
            "storm_at_fraction must be in (0, 1)",
        )
        _require(
            self.retention_mode in ("chain_depth", "storm_aware"),
            f"unknown retention_mode {self.retention_mode!r}; valid: "
            "'chain_depth', 'storm_aware'",
        )
        if self.retention_mode == "storm_aware":
            _require(
                self.storm_domain is not None,
                "storm_aware retention needs an armed storm_domain "
                "(it trades write traffic for storm read traffic)",
            )
        _require(
            self.storm_chain_limit >= 1, "storm_chain_limit must be >= 1"
        )
        if self.storm_chain_adaptive:
            _require(
                self.retention_mode == "storm_aware",
                "storm_chain_adaptive needs retention_mode="
                "'storm_aware' (it tunes the baseline-refresh bound)",
            )
        _require(
            self.restore_order in ("manifest", "hot_first"),
            f"unknown restore_order {self.restore_order!r}; valid: "
            "'manifest', 'hot_first'",
        )
        _require(
            0 <= self.replicate_k < self.num_jobs,
            "replicate_k must be >= 0 and leave at least one "
            "non-replica job (replicate_k < num_jobs)",
        )
        _require(self.peer_ring_bytes > 0, "peer_ring_bytes must be > 0")
        _require(
            self.baseline_flush_intervals >= 1,
            "baseline_flush_intervals must be >= 1",
        )
        _require(self.peer_bandwidth > 0, "peer_bandwidth must be > 0")
        _require(self.peer_latency_s >= 0, "peer_latency_s must be >= 0")
        _require(
            self.peer_cross_rack_factor >= 1.0,
            "peer_cross_rack_factor must be >= 1",
        )
        _require(
            0.0 <= self.bitrot_prob <= 1.0,
            "bitrot_prob must be in [0, 1]",
        )

    @property
    def resolved_admission_mode(self) -> str:
        """The effective admission mode after the deprecation mapping:
        an explicit ``admission_mode`` wins; otherwise a legacy
        ``max_concurrent_writes`` implies ``"static"``; else ``"none"``.
        """
        if self.admission_mode is not None:
            return self.admission_mode
        if self.max_concurrent_writes is not None:
            return "static"
        return "none"


@dataclass(frozen=True)
class ExperimentConfig:
    """A complete experiment: model + data + cluster + storage + ckpt."""

    model: ModelConfig = field(default_factory=ModelConfig)
    data: DataConfig = field(default_factory=DataConfig)
    reader: ReaderConfig = field(default_factory=ReaderConfig)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    storage: StorageConfig = field(default_factory=StorageConfig)
    checkpoint: CheckpointConfig = field(default_factory=CheckpointConfig)
    failures: FailureConfig = field(default_factory=FailureConfig)

    def with_overrides(self, **kwargs: object) -> "ExperimentConfig":
        """Return a copy with top-level sections replaced by keyword."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


_SECTION_TYPES = {
    "model": ModelConfig,
    "data": DataConfig,
    "reader": ReaderConfig,
    "cluster": ClusterConfig,
    "storage": StorageConfig,
    "checkpoint": CheckpointConfig,
    "failures": FailureConfig,
}


def experiment_config_to_dict(config: ExperimentConfig) -> dict:
    """Serialise an experiment config to a JSON-safe nested dict.

    Tuples become lists (JSON has no tuple); `experiment_config_from_dict`
    restores them. Used to persist a job's configuration alongside its
    checkpoints so tooling can rebuild the model for a restore.
    """
    from dataclasses import asdict

    def jsonable(value: object) -> object:
        if isinstance(value, tuple):
            return [jsonable(v) for v in value]
        if isinstance(value, dict):
            return {k: jsonable(v) for k, v in value.items()}
        return value

    return {
        section: jsonable(asdict(getattr(config, section)))
        for section in _SECTION_TYPES
    }


def experiment_config_from_dict(data: dict) -> ExperimentConfig:
    """Inverse of :func:`experiment_config_to_dict`."""
    import dataclasses

    sections = {}
    for section, cls in _SECTION_TYPES.items():
        if section not in data:
            sections[section] = cls()
            continue
        kwargs = dict(data[section])
        for fld in dataclasses.fields(cls):
            if fld.name in kwargs and isinstance(kwargs[fld.name], list):
                kwargs[fld.name] = tuple(kwargs[fld.name])
        try:
            sections[section] = cls(**kwargs)
        except TypeError as exc:
            raise ConfigError(
                f"bad {section} config section: {exc}"
            ) from exc
    return ExperimentConfig(**sections)
