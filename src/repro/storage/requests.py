"""Request-oriented storage primitives: op classes, costs, receipts.

Remote object storage is governed by *requests*, not byte moves: every
operation belongs to a class (PUT/GET/LIST/DELETE/HEAD), each class has
its own latency/throughput behaviour, and clients reason about wall
time per request — base latency, time-to-first-byte, per-byte streaming
time, occasional tail inflation. This module holds the vocabulary the
whole storage stack speaks:

* :class:`StorageRequest` — one classed operation (op, key, size,
  optional byte range, owning stream);
* :class:`OpCostModel` — the cost of one op class: base latency +
  per-byte time, with optional uniform jitter and a tail-latency mode;
* :class:`OpCostSuite` — the backend's full per-class cost table
  (one :class:`OpCostModel` per op class);
* :class:`OpReceipt` — the typed completion record every store
  operation returns: op class, bytes, issue/start/first-byte/completion
  times, part count (multipart PUTs / ranged GET fan-out), retries.

Backends own their cost suite (see
:class:`~repro.storage.backends.Backend`); the timed
:class:`~repro.storage.object_store.ObjectStore` turns costs into
timeline occupancy and receipts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..errors import StorageError

#: Upload/overwrite an object's bytes (one part of a multipart upload
#: is costed as a PUT-class request too).
OP_PUT = "PUT"
#: Fetch an object's bytes (whole, or a byte range).
OP_GET = "GET"
#: Enumerate keys under a prefix; per-"byte" cost is per *key* listed.
OP_LIST = "LIST"
#: Remove one object.
OP_DELETE = "DELETE"
#: Existence/metadata probe; never moves payload bytes.
OP_HEAD = "HEAD"

#: Every op class, in the order reports print them.
OP_CLASSES = (OP_PUT, OP_GET, OP_LIST, OP_DELETE, OP_HEAD)

#: Op classes that move payload bytes over the shared link (the rest
#: are control-plane requests that only cost latency).
DATA_OPS = (OP_PUT, OP_GET)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise StorageError(message)


@dataclass(frozen=True)
class StorageRequest:
    """One classed storage operation.

    ``nbytes`` is the payload size the request moves (0 for
    control-plane ops; number of keys for LIST). ``byte_range`` narrows
    a GET to ``[start, stop)`` of the object. ``key`` doubles as the
    prefix for LIST requests.
    """

    op: str
    key: str
    nbytes: int = 0
    stream: str = ""
    byte_range: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        _require(
            self.op in OP_CLASSES,
            f"unknown op class {self.op!r}; valid: {OP_CLASSES}",
        )
        _require(self.nbytes >= 0, f"negative request size {self.nbytes}")
        if self.byte_range is not None:
            _require(self.op == OP_GET, "byte_range only applies to GET")
            start, stop = self.byte_range
            _require(
                0 <= start < stop,
                f"invalid byte range [{start}, {stop})",
            )


def clip_range(data: bytes, byte_range: tuple[int, int] | None) -> bytes:
    """Apply a request's byte range to an object's bytes.

    The range may overhang the object's end (S3 semantics: the response
    is truncated at the last byte), but must start inside it.
    """
    if byte_range is None:
        return data
    start, stop = byte_range
    if start >= len(data):
        raise StorageError(
            f"range start {start} beyond object of {len(data)} bytes"
        )
    return data[start:stop]


@dataclass(frozen=True)
class OpCostModel:
    """Wall-time cost of one op class.

    ``duration = base_latency + nbytes * seconds_per_byte``, optionally
    inflated by uniform jitter in ``[0, jitter_s)`` and, with
    probability ``tail_prob``, a tail event multiplying the base
    latency by ``tail_factor`` (the p99-style stragglers request-based
    stores exhibit). Randomness requires a caller-supplied generator so
    simulations stay deterministic under a seed.
    """

    base_latency_s: float = 0.0
    seconds_per_byte: float = 0.0
    jitter_s: float = 0.0
    tail_prob: float = 0.0
    tail_factor: float = 4.0

    def __post_init__(self) -> None:
        _require(self.base_latency_s >= 0, "base latency must be >= 0")
        _require(self.seconds_per_byte >= 0, "per-byte time must be >= 0")
        _require(self.jitter_s >= 0, "jitter must be >= 0")
        _require(0.0 <= self.tail_prob <= 1.0, "tail_prob in [0, 1]")
        _require(self.tail_factor >= 1.0, "tail_factor must be >= 1")

    @property
    def randomised(self) -> bool:
        return self.jitter_s > 0 or self.tail_prob > 0

    def latency_s(self, rng: np.random.Generator | None = None) -> float:
        """The request's fixed (pre-first-byte) latency component."""
        latency = self.base_latency_s
        if rng is not None and self.randomised:
            if self.jitter_s > 0:
                latency += float(rng.uniform(0.0, self.jitter_s))
            if self.tail_prob > 0 and rng.random() < self.tail_prob:
                latency += self.base_latency_s * (self.tail_factor - 1.0)
        return latency

    def transfer_s(self, nbytes: int) -> float:
        """The per-byte streaming component for ``nbytes``."""
        _require(nbytes >= 0, f"negative transfer size {nbytes}")
        return nbytes * self.seconds_per_byte

    def duration_s(
        self, nbytes: int, rng: np.random.Generator | None = None
    ) -> float:
        """Total wall time of one request moving ``nbytes``."""
        return self.latency_s(rng) + self.transfer_s(nbytes)


@dataclass(frozen=True)
class OpCostSuite:
    """A backend's full cost table: one :class:`OpCostModel` per class."""

    put: OpCostModel = field(default_factory=OpCostModel)
    get: OpCostModel = field(default_factory=OpCostModel)
    list: OpCostModel = field(default_factory=OpCostModel)
    delete: OpCostModel = field(default_factory=OpCostModel)
    head: OpCostModel = field(default_factory=OpCostModel)

    def for_op(self, op: str) -> OpCostModel:
        try:
            return getattr(self, op.lower())
        except AttributeError:
            raise StorageError(f"unknown op class {op!r}") from None

    def with_bandwidths(
        self, write_bandwidth: float, read_bandwidth: float
    ) -> "OpCostSuite":
        """Copy with PUT/GET per-byte times set from link bandwidths."""
        _require(write_bandwidth > 0, "write bandwidth must be > 0")
        _require(read_bandwidth > 0, "read bandwidth must be > 0")
        return replace(
            self,
            put=replace(self.put, seconds_per_byte=1.0 / write_bandwidth),
            get=replace(self.get, seconds_per_byte=1.0 / read_bandwidth),
        )

    @classmethod
    def from_storage_config(cls, config) -> "OpCostSuite":
        """The legacy flat model: one fixed latency, two bandwidths.

        PUT/GET carry the configured per-op latency and the link's
        per-byte time; LIST/DELETE/HEAD are free — exactly the timing
        the store hard-coded before backends owned their costs, so
        in-process backends behave identically through the new API.
        """
        return cls(
            put=OpCostModel(
                base_latency_s=config.latency_s,
                seconds_per_byte=1.0 / config.write_bandwidth,
            ),
            get=OpCostModel(
                base_latency_s=config.latency_s,
                seconds_per_byte=1.0 / config.read_bandwidth,
            ),
        )


@dataclass(frozen=True)
class OpReceipt:
    """Typed completion record of one store operation.

    Times are simulated seconds: ``issued_s`` (request handed to the
    store) <= ``start_s`` (the op began occupying/queueing resources)
    <= ``first_byte_s`` (payload bytes started moving) <=
    ``completed_s``. ``parts`` counts multipart-upload parts or ranged
    sub-GETs (1 for single-shot ops); ``retries`` counts re-issued
    requests (0 unless a backend injects failures).
    """

    op: str
    key: str
    logical_bytes: int
    physical_bytes: int
    issued_s: float
    start_s: float
    first_byte_s: float
    completed_s: float
    parts: int = 1
    retries: int = 0
    stream: str = ""

    @property
    def end_s(self) -> float:
        """Legacy alias for :attr:`completed_s`."""
        return self.completed_s

    @property
    def duration_s(self) -> float:
        """Occupancy time: start (incl. request latency) to completion."""
        return self.completed_s - self.start_s

    @property
    def queue_s(self) -> float:
        """Time the request waited before any resource served it."""
        return self.start_s - self.issued_s

    @property
    def throughput(self) -> float:
        """Physical bytes per second over the op's occupancy time."""
        if self.duration_s <= 0:
            return 0.0
        return self.physical_bytes / self.duration_s


class OpLog:
    """Ordered record of every op receipt a store issued."""

    def __init__(self) -> None:
        self._receipts: list[OpReceipt] = []

    def record(self, receipt: OpReceipt) -> None:
        self._receipts.append(receipt)

    def receipts(
        self, op: str | None = None, stream: str | None = None
    ) -> list[OpReceipt]:
        return [
            r
            for r in self._receipts
            if (op is None or r.op == op)
            and (stream is None or r.stream == stream)
        ]

    def count(self, op: str | None = None) -> int:
        return len(self.receipts(op))

    def total_bytes(self, op: str) -> int:
        return sum(r.physical_bytes for r in self.receipts(op))

    def mean_duration_s(self, op: str) -> float:
        receipts = self.receipts(op)
        if not receipts:
            return 0.0
        return sum(r.duration_s for r in receipts) / len(receipts)

    def op_counts(self) -> dict[str, int]:
        """Receipts per op class (only classes that occurred)."""
        counts: dict[str, int] = {}
        for r in self._receipts:
            counts[r.op] = counts.get(r.op, 0) + 1
        return counts

    def total_retries(self, op: str | None = None) -> int:
        """Transient-failure retries summed over matching receipts."""
        return sum(r.retries for r in self.receipts(op))

    def retry_amplification(self, op: str | None = None) -> float:
        """Mean requests issued per successful operation.

        1.0 means no request was ever re-issued; an op class with
        failure probability *p* converges to 1 / (1 - p). The retry
        tax the engine pays the backend under transient failures.
        """
        receipts = self.receipts(op)
        if not receipts:
            return 1.0
        attempts = sum(1 + r.retries for r in receipts)
        return attempts / len(receipts)
