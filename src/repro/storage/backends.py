"""Byte-storage backends behind the request-oriented storage API.

A backend serves classed :class:`~repro.storage.requests.StorageRequest`
operations — ``put_object`` / ``get_object`` / ``head_object`` /
``delete_object`` / ``list_objects`` plus the batch ``delete_prefix`` —
and *owns its per-op-class cost models* (an
:class:`~repro.storage.requests.OpCostSuite`). The timed
:class:`~repro.storage.object_store.ObjectStore` asks the backend what
each request costs and serialises the data-plane time on the shared
link; backends themselves move bytes instantly.

The in-process backends (:class:`InMemoryBackend`, :class:`FileBackend`,
:class:`MirroredBackend`, :class:`CrashingBackend`) ship with
``costs=None``, meaning "defer to the store's config-derived legacy
model" — their behaviour through the new API is bit-identical to the
old flat interface. The S3-style
:class:`~repro.storage.remote.RemoteObjectBackend` instead carries its
own per-class latencies, multipart upload and ranged-GET windows.

A thin compatibility shim (``write``/``read``/``delete``/``exists``/
``list_keys`` on the base class) keeps the legacy flat call sites —
tests, tooling, examples — working unchanged on top of the request
methods.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from pathlib import Path

import numpy as np

from ..errors import ObjectNotFoundError, StorageError
from .requests import (
    OP_DELETE,
    OP_GET,
    OP_HEAD,
    OP_LIST,
    OP_PUT,
    OpCostSuite,
    StorageRequest,
    clip_range,
)


class Backend(ABC):
    """Request-oriented key -> bytes storage interface."""

    #: Per-op-class cost models. ``None`` defers to the store's
    #: config-derived legacy suite (fixed latency + link bandwidths).
    costs: OpCostSuite | None = None
    #: Multipart upload part size; ``None`` disables multipart (the
    #: store uploads every object single-shot).
    part_size_bytes: int | None = None
    #: Parallel upload lanes for multipart parts / ranged sub-GETs.
    #: Per-part request latency overlaps across lanes while the link
    #: serialises bytes, which is what amortises per-part latency.
    fanout: int = 1
    #: Split GETs larger than this into ranged sub-GETs; ``None``
    #: fetches whole objects.
    range_get_bytes: int | None = None

    # -- request-oriented data plane -----------------------------------

    @abstractmethod
    def put_object(self, request: StorageRequest, data: bytes) -> None:
        """Store ``data`` under ``request.key`` (overwrite allowed)."""

    @abstractmethod
    def get_object(self, request: StorageRequest) -> bytes:
        """Fetch ``request.key`` (honouring ``request.byte_range``);
        raises :class:`ObjectNotFoundError` if absent."""

    @abstractmethod
    def head_object(self, request: StorageRequest) -> bool:
        """Whether ``request.key`` is present."""

    @abstractmethod
    def delete_object(self, request: StorageRequest) -> None:
        """Remove ``request.key``; raises :class:`ObjectNotFoundError`
        if absent."""

    @abstractmethod
    def list_objects(self, request: StorageRequest) -> list[str]:
        """All keys with prefix ``request.key``, sorted."""

    def delete_prefix(self, request: StorageRequest) -> list[str]:
        """Batch-remove every key under a prefix; returns the keys.

        One LIST followed by per-key DELETEs — the cost the store
        charges mirrors that shape (a single LIST plus N DELETE under
        the cost model). Backends with a cheaper native bulk delete may
        override.
        """
        keys = self.list_objects(
            StorageRequest(OP_LIST, request.key, stream=request.stream)
        )
        for key in keys:
            self.delete_object(
                StorageRequest(OP_DELETE, key, stream=request.stream)
            )
        return keys

    # -- legacy flat shim ----------------------------------------------
    #
    # The original Backend ABC exposed write/read/delete/exists/
    # list_keys. Every legacy call site (tests, tooling, examples)
    # still works: each shim builds the equivalent classed request.

    def write(self, key: str, data: bytes) -> None:
        self.put_object(StorageRequest(OP_PUT, key, len(data)), data)

    def read(self, key: str) -> bytes:
        return self.get_object(StorageRequest(OP_GET, key))

    def delete(self, key: str) -> None:
        self.delete_object(StorageRequest(OP_DELETE, key))

    def exists(self, key: str) -> bool:
        return self.head_object(StorageRequest(OP_HEAD, key))

    def list_keys(self, prefix: str = "") -> list[str]:
        return self.list_objects(StorageRequest(OP_LIST, prefix))


class InMemoryBackend(Backend):
    """Dict-backed storage; the default for simulations and tests."""

    def __init__(self, costs: OpCostSuite | None = None) -> None:
        self.costs = costs
        self._objects: dict[str, bytes] = {}

    def put_object(self, request: StorageRequest, data: bytes) -> None:
        self._objects[request.key] = bytes(data)

    def get_object(self, request: StorageRequest) -> bytes:
        try:
            data = self._objects[request.key]
        except KeyError:
            raise ObjectNotFoundError(
                f"no object {request.key!r}"
            ) from None
        return clip_range(data, request.byte_range)

    def head_object(self, request: StorageRequest) -> bool:
        return request.key in self._objects

    def delete_object(self, request: StorageRequest) -> None:
        if request.key not in self._objects:
            raise ObjectNotFoundError(f"no object {request.key!r}")
        del self._objects[request.key]

    def list_objects(self, request: StorageRequest) -> list[str]:
        return sorted(
            k for k in self._objects if k.startswith(request.key)
        )


class FileBackend(Backend):
    """Filesystem-backed storage rooted at a directory.

    Keys may contain ``/`` which map to subdirectories. Writes are
    atomic (write to a temp name, then rename) so a crashed writer never
    leaves a half-written object visible: until the ``os.replace`` the
    only artifact is a ``.tmp`` file that reads and listings ignore.
    """

    def __init__(
        self, root: str | Path, costs: OpCostSuite | None = None
    ) -> None:
        self.costs = costs
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        if not key or key.startswith("/") or ".." in key.split("/"):
            raise StorageError(f"invalid object key {key!r}")
        return self.root / key

    def put_object(self, request: StorageRequest, data: bytes) -> None:
        path = self._path(request.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    def get_object(self, request: StorageRequest) -> bytes:
        path = self._path(request.key)
        if not path.is_file():
            raise ObjectNotFoundError(f"no object {request.key!r}")
        return clip_range(path.read_bytes(), request.byte_range)

    def head_object(self, request: StorageRequest) -> bool:
        return self._path(request.key).is_file()

    def delete_object(self, request: StorageRequest) -> None:
        path = self._path(request.key)
        if not path.is_file():
            raise ObjectNotFoundError(f"no object {request.key!r}")
        path.unlink()

    def list_objects(self, request: StorageRequest) -> list[str]:
        keys = []
        for path in self.root.rglob("*"):
            if path.is_file() and not path.name.endswith(".tmp"):
                key = str(path.relative_to(self.root))
                if key.startswith(request.key):
                    keys.append(key)
        return sorted(keys)


def corrupt_stored_object(
    backend: Backend, key: str, offset: int = 0, xor: int = 0x01
) -> None:
    """Flip one byte of a stored object in place (targeted bit rot).

    Deterministic injection for integrity tests and benches: the byte
    at ``offset`` (negative offsets count from the end) is XORed with
    ``xor``. The object's length is unchanged, so only digest/CRC
    verification can catch the damage.
    """
    data = bytearray(backend.read(key))
    if not data:
        raise StorageError(f"cannot bit-rot empty object {key!r}")
    if xor & 0xFF == 0:
        raise StorageError("xor mask must flip at least one bit")
    data[offset % len(data)] ^= xor & 0xFF
    backend.write(key, bytes(data))


class CrashingBackend(Backend):
    """Wraps a backend and injects write-path faults: crashes, bit rot.

    ``arm(n)`` makes the *n*-th subsequent PUT-class request raise
    :class:`StorageError` before touching the inner backend — the
    simulation equivalent of a node dying between two PUTs. Crash
    tests use it to leave a checkpoint's chunks on storage without its
    manifest and assert the restore path skips the torn checkpoint.

    ``arm_bitrot(prob, seed)`` instead flips one seeded byte of a
    PUT-class payload with probability ``prob`` per write — silent
    media corruption: the write *succeeds* and only integrity
    verification (sha256 digests, CRC frames) can catch it later.
    Deterministic for a fixed seed and write sequence; corrupted keys
    are recorded in :attr:`bitrot_injected`.

    The wrapper is transparent to the store: cost models, multipart /
    ranged-GET capabilities and the jitter RNG all delegate to the
    inner backend, and multipart *part* uploads count as PUT-class
    writes — arming a crash mid-upload exercises the store's
    abort-multipart path exactly like a node death would.
    """

    def __init__(self, inner: Backend) -> None:
        self.inner = inner
        self._writes_until_crash: int | None = None
        self.writes_seen = 0
        self._bitrot_prob = 0.0
        self._bitrot_rng: np.random.Generator | None = None
        #: Keys (chunk/manifest keys, or ``upload_id#partN`` for
        #: multipart parts) whose payload bytes were silently flipped.
        self.bitrot_injected: list[str] = []

    # -- capability/cost delegation ------------------------------------

    @property
    def costs(self) -> OpCostSuite | None:  # type: ignore[override]
        return self.inner.costs

    @property
    def part_size_bytes(self) -> int | None:  # type: ignore[override]
        return self.inner.part_size_bytes

    @property
    def fanout(self) -> int:  # type: ignore[override]
        return self.inner.fanout

    @property
    def range_get_bytes(self) -> int | None:  # type: ignore[override]
        return self.inner.range_get_bytes

    @property
    def rng(self):
        return getattr(self.inner, "rng", None)

    def cost_model(self, op: str, key: str, nbytes: int = 0):
        """Per-request pricing delegates to the inner backend (the
        cache tier's hit/miss refinement survives being wrapped)."""
        resolver = getattr(self.inner, "cost_model", None)
        if resolver is None:
            return None
        return resolver(op, key, nbytes)

    def attach_engine(self, engine) -> None:
        attach = getattr(self.inner, "attach_engine", None)
        if attach is not None:
            attach(engine)

    def arm(self, writes_until_crash: int) -> None:
        """Crash on the ``writes_until_crash``-th PUT from now (1-based)."""
        if writes_until_crash < 1:
            raise StorageError("writes_until_crash must be >= 1")
        self._writes_until_crash = writes_until_crash

    def disarm(self) -> None:
        self._writes_until_crash = None

    def arm_bitrot(self, prob: float, seed: int = 0xB17F) -> None:
        """Silently flip a seeded byte of each PUT with probability ``prob``."""
        if not 0.0 <= prob <= 1.0:
            raise StorageError("bit-rot probability must be in [0, 1]")
        self._bitrot_prob = prob
        self._bitrot_rng = np.random.default_rng(seed)

    def disarm_bitrot(self) -> None:
        self._bitrot_prob = 0.0
        self._bitrot_rng = None

    def corrupt_object(self, key: str, offset: int = 0) -> None:
        """Targeted bit rot: flip one byte of an already-stored object."""
        corrupt_stored_object(self.inner, key, offset=offset)
        self.bitrot_injected.append(key)

    def _maybe_rot(self, key: str, data: bytes) -> bytes:
        if (
            self._bitrot_rng is None
            or len(data) == 0
            or self._bitrot_rng.random() >= self._bitrot_prob
        ):
            return data
        rotted = bytearray(data)
        index = int(self._bitrot_rng.integers(len(rotted)))
        rotted[index] ^= 1 << int(self._bitrot_rng.integers(8))
        self.bitrot_injected.append(key)
        return bytes(rotted)

    def _count_write(self, key: str) -> None:
        self.writes_seen += 1
        if self._writes_until_crash is not None:
            self._writes_until_crash -= 1
            if self._writes_until_crash <= 0:
                self._writes_until_crash = None
                raise StorageError(
                    f"simulated crash before writing {key!r}"
                )

    def put_object(self, request: StorageRequest, data: bytes) -> None:
        self._count_write(request.key)
        self.inner.put_object(request, self._maybe_rot(request.key, data))

    # -- multipart control plane (delegated; parts count as writes) ----

    def create_multipart(self, key: str) -> str:
        return self.inner.create_multipart(key)

    def upload_part(
        self, upload_id: str, part_number: int, data: bytes
    ) -> None:
        part_key = f"{upload_id}#part{part_number}"
        self._count_write(part_key)
        self.inner.upload_part(
            upload_id, part_number, self._maybe_rot(part_key, data)
        )

    def complete_multipart(self, upload_id: str) -> None:
        self.inner.complete_multipart(upload_id)

    def abort_multipart(self, upload_id: str) -> None:
        self.inner.abort_multipart(upload_id)

    def get_object(self, request: StorageRequest) -> bytes:
        return self.inner.get_object(request)

    def head_object(self, request: StorageRequest) -> bool:
        return self.inner.head_object(request)

    def delete_object(self, request: StorageRequest) -> None:
        self.inner.delete_object(request)

    def list_objects(self, request: StorageRequest) -> list[str]:
        return self.inner.list_objects(request)


class MirroredBackend(Backend):
    """N synchronous replicas; reads fall through to any live replica.

    ``fail_replica`` simulates losing one replica's media — subsequent
    reads still succeed from the survivors, which is the availability
    argument for writing checkpoints to replicated remote storage
    rather than trainer-local disks.
    """

    def __init__(
        self,
        replicas: list[Backend],
        costs: OpCostSuite | None = None,
    ) -> None:
        if not replicas:
            raise StorageError("MirroredBackend needs at least one replica")
        self.costs = costs
        self._replicas = list(replicas)
        self._failed: set[int] = set()

    @property
    def replication_factor(self) -> int:
        return len(self._replicas)

    def fail_replica(self, index: int) -> None:
        """Mark one replica as lost (its contents become unreachable)."""
        if not 0 <= index < len(self._replicas):
            raise StorageError(f"no replica {index}")
        self._failed.add(index)

    def _live(self) -> list[Backend]:
        live = [
            r
            for i, r in enumerate(self._replicas)
            if i not in self._failed
        ]
        if not live:
            raise StorageError("all replicas have failed")
        return live

    def put_object(self, request: StorageRequest, data: bytes) -> None:
        for replica in self._live():
            replica.put_object(request, data)

    def get_object(self, request: StorageRequest) -> bytes:
        last_error: ObjectNotFoundError | None = None
        for replica in self._live():
            try:
                return replica.get_object(request)
            except ObjectNotFoundError as exc:
                last_error = exc
        raise last_error or ObjectNotFoundError(
            f"no object {request.key!r}"
        )

    def head_object(self, request: StorageRequest) -> bool:
        return any(r.head_object(request) for r in self._live())

    def delete_object(self, request: StorageRequest) -> None:
        found = False
        head = StorageRequest(OP_HEAD, request.key, stream=request.stream)
        for replica in self._live():
            if replica.head_object(head):
                replica.delete_object(request)
                found = True
        if not found:
            raise ObjectNotFoundError(f"no object {request.key!r}")

    def list_objects(self, request: StorageRequest) -> list[str]:
        keys: set[str] = set()
        for replica in self._live():
            keys.update(replica.list_objects(request))
        return sorted(keys)
