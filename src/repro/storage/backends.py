"""Byte-storage backends for the simulated object store.

The :class:`InMemoryBackend` is the default for experiments (fast,
hermetic); the :class:`FileBackend` persists objects under a directory
so examples can demonstrate real crash-restart recovery across
processes. A :class:`MirroredBackend` keeps N synchronous replicas and
survives the loss of any single one — the availability property the
paper gets from its replicated blob store.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from pathlib import Path

from ..errors import ObjectNotFoundError, StorageError


class Backend(ABC):
    """Minimal key -> bytes storage interface."""

    @abstractmethod
    def write(self, key: str, data: bytes) -> None:
        """Store ``data`` under ``key`` (overwrite allowed)."""

    @abstractmethod
    def read(self, key: str) -> bytes:
        """Fetch ``key``; raises :class:`ObjectNotFoundError` if absent."""

    @abstractmethod
    def delete(self, key: str) -> None:
        """Remove ``key``; raises :class:`ObjectNotFoundError` if absent."""

    @abstractmethod
    def exists(self, key: str) -> bool:
        """Whether ``key`` is present."""

    @abstractmethod
    def list_keys(self, prefix: str = "") -> list[str]:
        """All keys with the given prefix, sorted."""


class InMemoryBackend(Backend):
    """Dict-backed storage; the default for simulations and tests."""

    def __init__(self) -> None:
        self._objects: dict[str, bytes] = {}

    def write(self, key: str, data: bytes) -> None:
        self._objects[key] = bytes(data)

    def read(self, key: str) -> bytes:
        try:
            return self._objects[key]
        except KeyError:
            raise ObjectNotFoundError(f"no object {key!r}") from None

    def delete(self, key: str) -> None:
        if key not in self._objects:
            raise ObjectNotFoundError(f"no object {key!r}")
        del self._objects[key]

    def exists(self, key: str) -> bool:
        return key in self._objects

    def list_keys(self, prefix: str = "") -> list[str]:
        return sorted(k for k in self._objects if k.startswith(prefix))


class FileBackend(Backend):
    """Filesystem-backed storage rooted at a directory.

    Keys may contain ``/`` which map to subdirectories. Writes are
    atomic (write to a temp name, then rename) so a crashed writer never
    leaves a half-written object visible.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        if not key or key.startswith("/") or ".." in key.split("/"):
            raise StorageError(f"invalid object key {key!r}")
        return self.root / key

    def write(self, key: str, data: bytes) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    def read(self, key: str) -> bytes:
        path = self._path(key)
        if not path.is_file():
            raise ObjectNotFoundError(f"no object {key!r}")
        return path.read_bytes()

    def delete(self, key: str) -> None:
        path = self._path(key)
        if not path.is_file():
            raise ObjectNotFoundError(f"no object {key!r}")
        path.unlink()

    def exists(self, key: str) -> bool:
        return self._path(key).is_file()

    def list_keys(self, prefix: str = "") -> list[str]:
        keys = []
        for path in self.root.rglob("*"):
            if path.is_file() and not path.name.endswith(".tmp"):
                key = str(path.relative_to(self.root))
                if key.startswith(prefix):
                    keys.append(key)
        return sorted(keys)


class CrashingBackend(Backend):
    """Wraps a backend and kills the process at an armed write.

    ``arm(n)`` makes the *n*-th subsequent write raise
    :class:`StorageError` before touching the inner backend — the
    simulation equivalent of a node dying between two PUTs. Crash
    tests use it to leave a checkpoint's chunks on storage without its
    manifest and assert the restore path skips the torn checkpoint.
    """

    def __init__(self, inner: Backend) -> None:
        self.inner = inner
        self._writes_until_crash: int | None = None
        self.writes_seen = 0

    def arm(self, writes_until_crash: int) -> None:
        """Crash on the ``writes_until_crash``-th write from now (1-based)."""
        if writes_until_crash < 1:
            raise StorageError("writes_until_crash must be >= 1")
        self._writes_until_crash = writes_until_crash

    def disarm(self) -> None:
        self._writes_until_crash = None

    def write(self, key: str, data: bytes) -> None:
        self.writes_seen += 1
        if self._writes_until_crash is not None:
            self._writes_until_crash -= 1
            if self._writes_until_crash <= 0:
                self._writes_until_crash = None
                raise StorageError(
                    f"simulated crash before writing {key!r}"
                )
        self.inner.write(key, data)

    def read(self, key: str) -> bytes:
        return self.inner.read(key)

    def delete(self, key: str) -> None:
        self.inner.delete(key)

    def exists(self, key: str) -> bool:
        return self.inner.exists(key)

    def list_keys(self, prefix: str = "") -> list[str]:
        return self.inner.list_keys(prefix)


class MirroredBackend(Backend):
    """N synchronous replicas; reads fall through to any live replica.

    ``fail_replica`` simulates losing one replica's media — subsequent
    reads still succeed from the survivors, which is the availability
    argument for writing checkpoints to replicated remote storage
    rather than trainer-local disks.
    """

    def __init__(self, replicas: list[Backend]) -> None:
        if not replicas:
            raise StorageError("MirroredBackend needs at least one replica")
        self._replicas = list(replicas)
        self._failed: set[int] = set()

    @property
    def replication_factor(self) -> int:
        return len(self._replicas)

    def fail_replica(self, index: int) -> None:
        """Mark one replica as lost (its contents become unreachable)."""
        if not 0 <= index < len(self._replicas):
            raise StorageError(f"no replica {index}")
        self._failed.add(index)

    def _live(self) -> list[Backend]:
        live = [
            r
            for i, r in enumerate(self._replicas)
            if i not in self._failed
        ]
        if not live:
            raise StorageError("all replicas have failed")
        return live

    def write(self, key: str, data: bytes) -> None:
        for replica in self._live():
            replica.write(key, data)

    def read(self, key: str) -> bytes:
        last_error: ObjectNotFoundError | None = None
        for replica in self._live():
            try:
                return replica.read(key)
            except ObjectNotFoundError as exc:
                last_error = exc
        raise last_error or ObjectNotFoundError(f"no object {key!r}")

    def delete(self, key: str) -> None:
        found = False
        for replica in self._live():
            if replica.exists(key):
                replica.delete(key)
                found = True
        if not found:
            raise ObjectNotFoundError(f"no object {key!r}")

    def exists(self, key: str) -> bool:
        return any(r.exists(key) for r in self._live())

    def list_keys(self, prefix: str = "") -> list[str]:
        keys: set[str] = set()
        for replica in self._live():
            keys.update(replica.list_keys(prefix))
        return sorted(keys)
