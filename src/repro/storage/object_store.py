"""The simulated remote object store.

Checkpoints are written to "remote object storage to provide high
availability (including replications) and storage scalability" (paper
section 4). This store wraps a byte backend with:

* **request timing** — every operation is a classed request
  (PUT/GET/LIST/DELETE/HEAD) whose wall time comes from the backend's
  per-op-class :class:`~repro.storage.requests.OpCostModel`; data-plane
  transfers serialise on a storage :class:`Timeline` in simulated time,
  and every op returns a typed
  :class:`~repro.storage.requests.OpReceipt`;
* **a transfer engine** — multipart/ranged fan-out, part-granular
  staged writes, and the transient-failure retry/backoff loop all live
  in the attached :class:`~repro.storage.engine.TransferEngine`
  (``store.engine``); ``put``/``get`` delegate to it, and
  :meth:`ObjectStore.stage_put` exposes the part-granular staged path
  the checkpoint writer and fleet scheduler interleave on;
* **replication accounting** — physical bytes = logical x factor;
* **capacity accounting** — live logical/physical bytes over time, the
  series behind Fig 16, plus an optional hard capacity limit;
* **a transfer log + op log** — the per-transfer series behind Fig 15's
  bandwidth numbers (write *and* read traffic, op-class tagged) and the
  per-receipt record behind the backend-ops benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import StorageConfig
from ..distributed.clock import SimClock, Timeline
from ..errors import StorageError
from .backends import Backend
from .bandwidth import BandwidthArbiter, TransferLog
from .engine import StagedGet, StagedPut, TransferEngine
from .requests import (
    OP_DELETE,
    OP_GET,
    OP_HEAD,
    OP_LIST,
    OP_PUT,
    OpCostSuite,
    OpLog,
    OpReceipt,
    StorageRequest,
)

#: Legacy alias: PUT completions used to be ``PutReceipt``; every field
#: the old type exposed (key, logical/physical bytes, start_s, end_s,
#: duration_s) is still available on :class:`OpReceipt`.
PutReceipt = OpReceipt


@dataclass(frozen=True)
class CapacityPoint:
    """Live capacity at one moment in simulated time."""

    time_s: float
    logical_bytes: int
    physical_bytes: int


@dataclass(frozen=True)
class StoreStats:
    """Aggregate store statistics."""

    live_logical_bytes: int
    live_physical_bytes: int
    peak_physical_bytes: int
    total_bytes_written: int
    num_objects: int


@dataclass(frozen=True)
class PrefixDeleteReceipt:
    """Completion record of a batch prefix delete (1 LIST + N DELETE)."""

    prefix: str
    keys: tuple[str, ...]
    freed_logical_bytes: int
    freed_physical_bytes: int
    issued_s: float
    completed_s: float

    @property
    def num_objects(self) -> int:
        return len(self.keys)


class ObjectStore:
    """Request-timed, capacity-accounted object storage in sim time."""

    def __init__(
        self,
        config: StorageConfig,
        clock: SimClock,
        backend: Backend | None = None,
        arbiter: BandwidthArbiter | None = None,
    ) -> None:
        self.config = config
        self.clock = clock
        if backend is None:
            from .factory import make_backend

            backend = make_backend(config.backend, config)
        self.backend = backend
        #: Effective per-op-class cost table: the backend's own suite
        #: when it carries one, else the legacy config-derived model
        #: (fixed latency + link bandwidths, metadata ops free).
        self.costs: OpCostSuite = (
            backend.costs
            if backend.costs is not None
            else OpCostSuite.from_storage_config(config)
        )
        self.timeline = Timeline(clock, "storage")
        self.log = TransferLog()
        self.ops = OpLog()
        self.arbiter = arbiter
        self._rng: np.random.Generator | None = getattr(
            backend, "rng", None
        )
        self._sizes: dict[str, int] = {}
        self._capacity_series: list[CapacityPoint] = []
        self._peak_physical = 0
        self._total_written = 0
        #: The transfer engine: part-granular staged PUTs, multipart /
        #: ranged fan-out, retry/backoff, and the quantization worker
        #: pool all live here.
        self.engine = TransferEngine(self)
        # Backends that run asynchronous work of their own (the cache
        # tier's dirty flushes) borrow the engine's retry/backoff loop.
        attach = getattr(backend, "attach_engine", None)
        if attach is not None:
            attach(self.engine)
        self._record_capacity(clock.now)

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------

    @property
    def live_logical_bytes(self) -> int:
        return sum(self._sizes.values())

    @property
    def live_physical_bytes(self) -> int:
        return self.live_logical_bytes * self.config.replication_factor

    def _record_capacity(self, time_s: float) -> None:
        physical = self.live_physical_bytes
        self._peak_physical = max(self._peak_physical, physical)
        self._capacity_series.append(
            CapacityPoint(time_s, self.live_logical_bytes, physical)
        )

    def capacity_series(self) -> list[CapacityPoint]:
        """Live-bytes-over-time samples (one per mutation)."""
        return list(self._capacity_series)

    def stats(self) -> StoreStats:
        return StoreStats(
            live_logical_bytes=self.live_logical_bytes,
            live_physical_bytes=self.live_physical_bytes,
            peak_physical_bytes=self._peak_physical,
            total_bytes_written=self._total_written,
            num_objects=len(self._sizes),
        )

    # ------------------------------------------------------------------
    # Cost helpers
    # ------------------------------------------------------------------

    def cost_for(self, op: str, key: str, nbytes: int = 0):
        """Resolve the cost model for one specific request.

        Backends that price per *request* rather than per op class — a
        cache tier whose GET cost depends on whether ``key`` is
        near-resident — expose a ``cost_model(op, key, nbytes)`` hook;
        everything else falls through to the store-level suite (the
        very same :class:`~repro.storage.requests.OpCostModel` objects,
        so timing without such a backend is bit-identical to pricing
        via ``self.costs``).
        """
        resolver = getattr(self.backend, "cost_model", None)
        if resolver is not None:
            model = resolver(op, key, nbytes)
            if model is not None:
                return model
        return self.costs.for_op(op)

    def predict_put_duration(self, logical_bytes: int) -> float:
        """Expected single-shot PUT wall time for a payload size.

        Used by the checkpoint writer to predict a manifest's landing
        time before the PUT is issued. Deterministic: jitter/tail draws
        are excluded (they are timing noise around this expectation).
        """
        return self.costs.for_op(OP_PUT).duration_s(
            logical_bytes * self.config.replication_factor
        )

    def _record_op(
        self,
        op: str,
        key: str,
        logical: int,
        physical: int,
        issued: float,
        duration: float,
        stream: str,
        retries: int = 0,
    ) -> OpReceipt:
        """Book a control-plane request (no link occupancy)."""
        receipt = OpReceipt(
            op=op,
            key=key,
            logical_bytes=logical,
            physical_bytes=physical,
            issued_s=issued,
            start_s=issued,
            first_byte_s=issued + duration,
            completed_s=issued + duration,
            retries=retries,
            stream=stream,
        )
        self.ops.record(receipt)
        return receipt

    def _commit_put(
        self, key: str, logical: int, receipt: OpReceipt
    ) -> None:
        """Book a landed PUT: size map, totals, op log, capacity.

        Called by the transfer engine when a staged write's last part
        (and its completion request) has been submitted.
        """
        self._sizes[key] = logical
        self._total_written += receipt.physical_bytes
        self.ops.record(receipt)
        self._record_capacity(receipt.completed_s)

    # ------------------------------------------------------------------
    # Object operations
    # ------------------------------------------------------------------

    def put(
        self,
        key: str,
        data: bytes,
        overwrite: bool = False,
        earliest: float | None = None,
        stream: str = "",
    ) -> OpReceipt:
        """Store an object; occupies the storage link in sim time.

        ``earliest`` defers the transfer start (the pipelined checkpoint
        writer passes the chunk's quantization-finish time here).
        ``stream`` tags the transfer with its owning job on a shared
        store; when an arbiter is attached, the stream's capacity quota
        is checked (and charged) before any link time is spent.

        Delegates to the transfer engine: against a backend that
        advertises ``part_size_bytes``, payloads larger than one part
        upload through the multipart protocol with per-part request
        latency overlapped across ``backend.fanout`` lanes, transient
        request failures are retried with backoff (the receipt's
        ``retries`` counts them), and a failure mid-upload aborts the
        multipart — no partial object ever becomes visible.
        """
        return self.engine.put(
            key,
            data,
            overwrite=overwrite,
            earliest=earliest,
            stream=stream,
        )

    def stage_put(
        self,
        key: str,
        data: bytes,
        overwrite: bool = False,
        earliest: float | None = None,
        stream: str = "",
    ) -> StagedPut:
        """Announce a PUT whose parts are submitted one at a time.

        The part-granular staged path: quota/capacity are checked now,
        then each :meth:`~repro.storage.engine.StagedPut.submit_next`
        call issues exactly one multipart part (or the whole object for
        single-shot uploads). The fleet scheduler drains staged writes
        from many jobs through the bandwidth arbiter, so the shared
        link interleaves *parts*, not whole chunks.
        """
        return self.engine.stage_put(
            key,
            data,
            overwrite=overwrite,
            earliest=earliest,
            stream=stream,
        )

    def get(
        self,
        key: str,
        earliest: float | None = None,
        stream: str = "",
        byte_range: tuple[int, int] | None = None,
    ) -> bytes:
        """Fetch an object (timed on the shared storage timeline).

        ``earliest`` floors the transfer start at the caller's own
        simulated time — on a shared store the reading job's clock may
        be ahead of the store's, and a restore must not be timed before
        the failure that triggered it. ``byte_range`` narrows the read
        to ``[start, stop)``.

        Delegates to the transfer engine: against a backend that
        advertises ``range_get_bytes``, whole reads larger than that
        window are issued as ranged sub-GETs fanned out over the
        backend's request lanes, and transient failures are retried
        with backoff.
        """
        return self.engine.get(
            key,
            earliest=earliest,
            stream=stream,
            byte_range=byte_range,
        )

    def stage_get(
        self,
        key: str,
        earliest: float | None = None,
        stream: str = "",
        byte_range: tuple[int, int] | None = None,
    ) -> StagedGet:
        """Announce a GET whose ranged parts are submitted one at a time.

        The read-side mirror of :meth:`stage_put`: the restore path
        stages its chunk reads so the fleet scheduler can interleave
        *parts* from many recovering jobs through the bandwidth arbiter
        — a restore storm drains part by part instead of whole chunk
        reads head-of-line. Draining a staged GET uninterrupted is
        timing-identical to :meth:`get`.
        """
        return self.engine.stage_get(
            key,
            earliest=earliest,
            stream=stream,
            byte_range=byte_range,
        )

    def delete(
        self, key: str, stream: str = "", at_s: float | None = None
    ) -> OpReceipt:
        """Remove an object and update capacity accounting.

        ``at_s`` timestamps the capacity sample with the deleting job's
        clock (shared stores lag behind per-job clocks); ``stream``
        credits the freed physical bytes back to the job's quota.
        """
        physical = self._sizes.get(key, 0) * self.config.replication_factor
        request = StorageRequest(OP_DELETE, key, stream=stream)
        _, retries, penalty, latency = self.engine.attempt_request(
            OP_DELETE, lambda: self.backend.delete_object(request)
        )
        self._sizes.pop(key, None)
        if self.arbiter is not None and stream:
            self.arbiter.credit_delete(stream, physical)
        when = self.clock.now if at_s is None else max(at_s, self.clock.now)
        self._record_capacity(when)
        return self._record_op(
            OP_DELETE,
            key,
            0,
            physical,
            when,
            penalty + latency,
            stream,
            retries=retries,
        )

    def delete_prefix(
        self, prefix: str, stream: str = "", at_s: float | None = None
    ) -> PrefixDeleteReceipt:
        """Batch-remove every object under a prefix.

        Costed as a *single* LIST followed by N DELETE requests — the
        shape retention sweeps take against a real object store —
        rather than N client-side list+delete round trips. Capacity is
        re-sampled once, after the whole batch.
        """
        issued = (
            self.clock.now
            if at_s is None
            else max(at_s, self.clock.now)
        )
        # One enumeration serves both the size bookkeeping and the
        # deletes (the backend's own delete_prefix would LIST again).
        list_request = StorageRequest(OP_LIST, prefix, stream=stream)
        keys, list_retries, list_penalty, list_latency = (
            self.engine.attempt_request(
                OP_LIST, lambda: self.backend.list_objects(list_request)
            )
        )
        freed_logical = 0
        for key in keys:
            freed_logical += self.object_size(key)
        freed_physical = freed_logical * self.config.replication_factor
        deletions: list[tuple[str, int, float]] = []
        for key in keys:
            request = StorageRequest(OP_DELETE, key, stream=stream)
            _, retries, penalty, latency = self.engine.attempt_request(
                OP_DELETE, lambda: self.backend.delete_object(request)
            )
            deletions.append((key, retries, penalty + latency))
        completed = (
            issued
            + list_penalty
            + list_latency
            + self.costs.for_op(OP_LIST).transfer_s(len(keys))
        )
        self._record_op(
            OP_LIST,
            prefix,
            len(keys),
            0,
            issued,
            completed - issued,
            stream,
            retries=list_retries,
        )
        for key, retries, duration in deletions:
            physical = (
                self._sizes.pop(key, 0) * self.config.replication_factor
            )
            self._record_op(
                OP_DELETE,
                key,
                0,
                physical,
                completed,
                duration,
                stream,
                retries=retries,
            )
            completed += duration
        if self.arbiter is not None and stream:
            self.arbiter.credit_delete(stream, freed_physical)
        if keys:
            self._record_capacity(max(completed, issued))
        return PrefixDeleteReceipt(
            prefix=prefix,
            keys=tuple(keys),
            freed_logical_bytes=freed_logical,
            freed_physical_bytes=freed_physical,
            issued_s=issued,
            completed_s=completed,
        )

    def exists(self, key: str, stream: str = "") -> bool:
        """HEAD probe: is the key present?"""
        request = StorageRequest(OP_HEAD, key, stream=stream)
        present, retries, penalty, latency = self.engine.attempt_request(
            OP_HEAD,
            lambda: self.backend.head_object(request),
            cost=self.cost_for(OP_HEAD, key),
        )
        self._record_op(
            OP_HEAD,
            key,
            0,
            0,
            self.clock.now,
            penalty + latency,
            stream,
            retries=retries,
        )
        return present

    def list_keys(self, prefix: str = "", stream: str = "") -> list[str]:
        """LIST request: all keys under a prefix, sorted."""
        request = StorageRequest(OP_LIST, prefix, stream=stream)
        keys, retries, penalty, latency = self.engine.attempt_request(
            OP_LIST, lambda: self.backend.list_objects(request)
        )
        self._record_op(
            OP_LIST,
            prefix,
            len(keys),
            0,
            self.clock.now,
            penalty
            + latency
            + self.costs.for_op(OP_LIST).transfer_s(len(keys)),
            stream,
            retries=retries,
        )
        return keys

    def object_size(self, key: str) -> int:
        """Logical size of a stored object.

        Sizes of objects written by this process are tracked in memory;
        objects inherited from a previous process (a durable backend
        reopened after a restart) fall back to reading the backend.
        """
        try:
            return self._sizes[key]
        except KeyError:
            if self.engine.retry_probe(
                OP_HEAD, lambda: self.backend.exists(key)
            ):
                size = len(
                    self.engine.retry_probe(
                        OP_GET, lambda: self.backend.read(key)
                    )
                )
                self._sizes[key] = size
                return size
            raise StorageError(f"no size recorded for {key!r}") from None
