"""The simulated remote object store.

Checkpoints are written to "remote object storage to provide high
availability (including replications) and storage scalability" (paper
section 4). This store wraps a byte backend with:

* **request timing** — every operation is a classed request
  (PUT/GET/LIST/DELETE/HEAD) whose wall time comes from the backend's
  per-op-class :class:`~repro.storage.requests.OpCostModel`; data-plane
  transfers serialise on a storage :class:`Timeline` in simulated time,
  and every op returns a typed
  :class:`~repro.storage.requests.OpReceipt`;
* **multipart upload / ranged GET fan-out** — against a backend that
  supports them (the S3-style
  :class:`~repro.storage.remote.RemoteObjectBackend`), large PUTs split
  into parts and large GETs into ranged sub-reads; per-part request
  latency overlaps across parallel lanes while the link serialises the
  bytes, which amortises per-request latency exactly the way real
  multipart uploads do;
* **replication accounting** — physical bytes = logical x factor;
* **capacity accounting** — live logical/physical bytes over time, the
  series behind Fig 16, plus an optional hard capacity limit;
* **a transfer log + op log** — the per-transfer series behind Fig 15's
  bandwidth numbers (write *and* read traffic, op-class tagged) and the
  per-receipt record behind the backend-ops benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import StorageConfig
from ..distributed.clock import SimClock, Timeline
from ..errors import CapacityExceededError, ObjectExistsError, StorageError
from .backends import Backend
from .bandwidth import BandwidthArbiter, Transfer, TransferLog
from .requests import (
    OP_DELETE,
    OP_GET,
    OP_HEAD,
    OP_LIST,
    OP_PUT,
    OpCostSuite,
    OpLog,
    OpReceipt,
    StorageRequest,
)

#: Legacy alias: PUT completions used to be ``PutReceipt``; every field
#: the old type exposed (key, logical/physical bytes, start_s, end_s,
#: duration_s) is still available on :class:`OpReceipt`.
PutReceipt = OpReceipt


@dataclass(frozen=True)
class CapacityPoint:
    """Live capacity at one moment in simulated time."""

    time_s: float
    logical_bytes: int
    physical_bytes: int


@dataclass(frozen=True)
class StoreStats:
    """Aggregate store statistics."""

    live_logical_bytes: int
    live_physical_bytes: int
    peak_physical_bytes: int
    total_bytes_written: int
    num_objects: int


@dataclass(frozen=True)
class PrefixDeleteReceipt:
    """Completion record of a batch prefix delete (1 LIST + N DELETE)."""

    prefix: str
    keys: tuple[str, ...]
    freed_logical_bytes: int
    freed_physical_bytes: int
    issued_s: float
    completed_s: float

    @property
    def num_objects(self) -> int:
        return len(self.keys)


class ObjectStore:
    """Request-timed, capacity-accounted object storage in sim time."""

    def __init__(
        self,
        config: StorageConfig,
        clock: SimClock,
        backend: Backend | None = None,
        arbiter: BandwidthArbiter | None = None,
    ) -> None:
        self.config = config
        self.clock = clock
        if backend is None:
            from .factory import make_backend

            backend = make_backend(config.backend, config)
        self.backend = backend
        #: Effective per-op-class cost table: the backend's own suite
        #: when it carries one, else the legacy config-derived model
        #: (fixed latency + link bandwidths, metadata ops free).
        self.costs: OpCostSuite = (
            backend.costs
            if backend.costs is not None
            else OpCostSuite.from_storage_config(config)
        )
        self.timeline = Timeline(clock, "storage")
        self.log = TransferLog()
        self.ops = OpLog()
        self.arbiter = arbiter
        self._rng: np.random.Generator | None = getattr(
            backend, "rng", None
        )
        self._sizes: dict[str, int] = {}
        self._capacity_series: list[CapacityPoint] = []
        self._peak_physical = 0
        self._total_written = 0
        self._record_capacity(clock.now)

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------

    @property
    def live_logical_bytes(self) -> int:
        return sum(self._sizes.values())

    @property
    def live_physical_bytes(self) -> int:
        return self.live_logical_bytes * self.config.replication_factor

    def _record_capacity(self, time_s: float) -> None:
        physical = self.live_physical_bytes
        self._peak_physical = max(self._peak_physical, physical)
        self._capacity_series.append(
            CapacityPoint(time_s, self.live_logical_bytes, physical)
        )

    def capacity_series(self) -> list[CapacityPoint]:
        """Live-bytes-over-time samples (one per mutation)."""
        return list(self._capacity_series)

    def stats(self) -> StoreStats:
        return StoreStats(
            live_logical_bytes=self.live_logical_bytes,
            live_physical_bytes=self.live_physical_bytes,
            peak_physical_bytes=self._peak_physical,
            total_bytes_written=self._total_written,
            num_objects=len(self._sizes),
        )

    # ------------------------------------------------------------------
    # Cost helpers
    # ------------------------------------------------------------------

    def predict_put_duration(self, logical_bytes: int) -> float:
        """Expected single-shot PUT wall time for a payload size.

        Used by the checkpoint writer to predict a manifest's landing
        time before the PUT is issued. Deterministic: jitter/tail draws
        are excluded (they are timing noise around this expectation).
        """
        return self.costs.for_op(OP_PUT).duration_s(
            logical_bytes * self.config.replication_factor
        )

    def _record_op(
        self,
        op: str,
        key: str,
        logical: int,
        physical: int,
        issued: float,
        duration: float,
        stream: str,
    ) -> OpReceipt:
        """Book a control-plane request (no link occupancy)."""
        receipt = OpReceipt(
            op=op,
            key=key,
            logical_bytes=logical,
            physical_bytes=physical,
            issued_s=issued,
            start_s=issued,
            first_byte_s=issued + duration,
            completed_s=issued + duration,
            stream=stream,
        )
        self.ops.record(receipt)
        return receipt

    # ------------------------------------------------------------------
    # Object operations
    # ------------------------------------------------------------------

    def put(
        self,
        key: str,
        data: bytes,
        overwrite: bool = False,
        earliest: float | None = None,
        stream: str = "",
    ) -> OpReceipt:
        """Store an object; occupies the storage link in sim time.

        ``earliest`` defers the transfer start (the pipelined checkpoint
        writer passes the chunk's quantization-finish time here).
        ``stream`` tags the transfer with its owning job on a shared
        store; when an arbiter is attached, the stream's capacity quota
        is checked (and charged) before any link time is spent.

        Against a backend that advertises ``part_size_bytes``, payloads
        larger than one part upload through the multipart protocol:
        per-part PUT requests fan out over ``backend.fanout`` lanes
        (request latencies overlap; the link serialises bytes) and a
        completion request publishes the object. A failure mid-upload
        aborts the multipart — no partial object ever becomes visible.
        """
        if not key:
            raise StorageError("object key must be non-empty")
        if self.backend.exists(key) and not overwrite:
            raise ObjectExistsError(f"object {key!r} already exists")
        logical = len(data)
        physical = logical * self.config.replication_factor
        previous = self._sizes.get(key, 0)
        if self.config.capacity_bytes is not None:
            projected = (
                self.live_physical_bytes
                - previous * self.config.replication_factor
                + physical
            )
            if projected > self.config.capacity_bytes:
                raise CapacityExceededError(
                    f"PUT {key!r} would raise physical usage to "
                    f"{projected} bytes, over the "
                    f"{self.config.capacity_bytes}-byte capacity"
                )
        charged = physical - previous * self.config.replication_factor
        if self.arbiter is not None and stream:
            self.arbiter.admit_put(stream, charged)
        part_size = self.backend.part_size_bytes
        try:
            if part_size is not None and logical > part_size:
                receipt = self._put_multipart(
                    key, data, part_size, earliest, stream
                )
            else:
                receipt = self._put_single(key, data, earliest, stream)
        except Exception:
            # The bytes never landed: return the quota charge so a
            # failing backend cannot leak a stream's budget away.
            if self.arbiter is not None and stream:
                self.arbiter.credit_delete(stream, charged)
            raise
        self._sizes[key] = logical
        self._total_written += physical
        self.ops.record(receipt)
        self._record_capacity(receipt.completed_s)
        return receipt

    def _put_single(
        self,
        key: str,
        data: bytes,
        earliest: float | None,
        stream: str,
    ) -> OpReceipt:
        """One PUT request: latency + bytes, serialised on the link."""
        cost = self.costs.for_op(OP_PUT)
        logical = len(data)
        physical = logical * self.config.replication_factor
        issued = max(self.clock.now, earliest or 0.0)
        latency = cost.latency_s(self._rng)
        duration = latency + cost.transfer_s(physical)
        span = self.timeline.submit(
            duration, label=f"put:{key}", earliest=earliest
        )
        self.backend.put_object(
            StorageRequest(OP_PUT, key, logical, stream=stream), data
        )
        self.log.record(
            Transfer(
                key, physical, span.start, span.end, "put", stream
            )
        )
        if self.arbiter is not None and stream:
            self.arbiter.on_transfer(stream, physical, "put")
        return OpReceipt(
            op=OP_PUT,
            key=key,
            logical_bytes=logical,
            physical_bytes=physical,
            issued_s=issued,
            start_s=span.start,
            first_byte_s=min(span.start + latency, span.end),
            completed_s=span.end,
            stream=stream,
        )

    def _put_multipart(
        self,
        key: str,
        data: bytes,
        part_size: int,
        earliest: float | None,
        stream: str,
    ) -> OpReceipt:
        """Multipart upload: N part PUTs + one completion request.

        Parts round-robin over ``backend.fanout`` upload lanes: a
        lane's next part cannot issue before its previous part's bytes
        finished, but *different* lanes' request latencies overlap the
        link's byte time — with fanout > 1 only the first part's
        latency is exposed, the amortisation multipart exists for.
        """
        backend = self.backend
        cost = self.costs.for_op(OP_PUT)
        replication = self.config.replication_factor
        fanout = max(1, backend.fanout)
        issued = max(self.clock.now, earliest or 0.0)
        # Occupancy starts when the link could serve this op (queueing
        # behind earlier transfers is queue_s, not duration_s — the
        # same semantics single-shot receipts carry).
        started = max(issued, self.timeline.free_at)
        upload_id = backend.create_multipart(key)
        lane_free = [started] * fanout
        first_byte: float | None = None
        parts = 0
        try:
            for offset in range(0, len(data), part_size):
                chunk = data[offset : offset + part_size]
                lane = parts % fanout
                latency = cost.latency_s(self._rng)
                physical = len(chunk) * replication
                span = self.timeline.submit(
                    cost.transfer_s(physical),
                    label=f"put-part:{key}:{parts + 1}",
                    earliest=lane_free[lane] + latency,
                )
                backend.upload_part(upload_id, parts + 1, chunk)
                lane_free[lane] = span.end
                if first_byte is None:
                    first_byte = span.start
                self.log.record(
                    Transfer(
                        f"{key}#part{parts + 1}",
                        physical,
                        span.start,
                        span.end,
                        "put",
                        stream,
                    )
                )
                if self.arbiter is not None and stream:
                    self.arbiter.on_transfer(stream, physical, "put")
                parts += 1
            # The completion request publishes the object: one more
            # PUT-class latency, control-plane only (no link bytes).
            completed = max(lane_free) + cost.latency_s(self._rng)
            backend.complete_multipart(upload_id)
        except Exception:
            backend.abort_multipart(upload_id)
            raise
        assert first_byte is not None
        return OpReceipt(
            op=OP_PUT,
            key=key,
            logical_bytes=len(data),
            physical_bytes=len(data) * replication,
            issued_s=issued,
            start_s=started,
            first_byte_s=first_byte,
            completed_s=completed,
            parts=parts,
            stream=stream,
        )

    def get(
        self,
        key: str,
        earliest: float | None = None,
        stream: str = "",
        byte_range: tuple[int, int] | None = None,
    ) -> bytes:
        """Fetch an object (timed on the shared storage timeline).

        ``earliest`` floors the transfer start at the caller's own
        simulated time — on a shared store the reading job's clock may
        be ahead of the store's, and a restore must not be timed before
        the failure that triggered it. ``byte_range`` narrows the read
        to ``[start, stop)``.

        Against a backend that advertises ``range_get_bytes``, whole
        reads larger than that window are issued as ranged sub-GETs
        fanned out over the backend's request lanes — restores through
        the S3-style backend read their chunks in ranged windows
        automatically.
        """
        window = self.backend.range_get_bytes
        known = self._sizes.get(key)
        if (
            byte_range is None
            and window is not None
            and known is not None
            and known > window
        ):
            return self._get_ranged(key, known, window, earliest, stream)
        cost = self.costs.for_op(OP_GET)
        issued = max(self.clock.now, earliest or 0.0)
        data = self.backend.get_object(
            StorageRequest(OP_GET, key, stream=stream, byte_range=byte_range)
        )
        latency = cost.latency_s(self._rng)
        duration = latency + cost.transfer_s(len(data))
        span = self.timeline.submit(
            duration, label=f"get:{key}", earliest=earliest
        )
        self.log.record(
            Transfer(
                key, len(data), span.start, span.end, "get", stream
            )
        )
        if self.arbiter is not None and stream:
            self.arbiter.on_transfer(stream, len(data), "get")
        self.ops.record(
            OpReceipt(
                op=OP_GET,
                key=key,
                logical_bytes=len(data),
                physical_bytes=len(data),
                issued_s=issued,
                start_s=span.start,
                first_byte_s=min(span.start + latency, span.end),
                completed_s=span.end,
                stream=stream,
            )
        )
        return data

    def _get_ranged(
        self,
        key: str,
        size: int,
        window: int,
        earliest: float | None,
        stream: str,
    ) -> bytes:
        """Split one large GET into ranged sub-GETs over request lanes."""
        cost = self.costs.for_op(OP_GET)
        fanout = max(1, self.backend.fanout)
        issued = max(self.clock.now, earliest or 0.0)
        started = max(issued, self.timeline.free_at)
        lane_free = [started] * fanout
        first_byte: float | None = None
        pieces: list[bytes] = []
        for index, start in enumerate(range(0, size, window)):
            stop = min(start + window, size)
            chunk = self.backend.get_object(
                StorageRequest(
                    OP_GET, key, stream=stream, byte_range=(start, stop)
                )
            )
            lane = index % fanout
            latency = cost.latency_s(self._rng)
            span = self.timeline.submit(
                cost.transfer_s(len(chunk)),
                label=f"get-range:{key}:{index}",
                earliest=lane_free[lane] + latency,
            )
            lane_free[lane] = span.end
            if first_byte is None:
                first_byte = span.start
            pieces.append(chunk)
            self.log.record(
                Transfer(
                    f"{key}#range{index}",
                    len(chunk),
                    span.start,
                    span.end,
                    "get",
                    stream,
                )
            )
            if self.arbiter is not None and stream:
                self.arbiter.on_transfer(stream, len(chunk), "get")
        assert first_byte is not None
        self.ops.record(
            OpReceipt(
                op=OP_GET,
                key=key,
                logical_bytes=size,
                physical_bytes=size,
                issued_s=issued,
                start_s=started,
                first_byte_s=first_byte,
                completed_s=max(lane_free),
                parts=len(pieces),
                stream=stream,
            )
        )
        return b"".join(pieces)

    def delete(
        self, key: str, stream: str = "", at_s: float | None = None
    ) -> OpReceipt:
        """Remove an object and update capacity accounting.

        ``at_s`` timestamps the capacity sample with the deleting job's
        clock (shared stores lag behind per-job clocks); ``stream``
        credits the freed physical bytes back to the job's quota.
        """
        physical = self._sizes.get(key, 0) * self.config.replication_factor
        self.backend.delete_object(
            StorageRequest(OP_DELETE, key, stream=stream)
        )
        self._sizes.pop(key, None)
        if self.arbiter is not None and stream:
            self.arbiter.credit_delete(stream, physical)
        when = self.clock.now if at_s is None else max(at_s, self.clock.now)
        self._record_capacity(when)
        return self._record_op(
            OP_DELETE,
            key,
            0,
            physical,
            when,
            self.costs.for_op(OP_DELETE).duration_s(0, self._rng),
            stream,
        )

    def delete_prefix(
        self, prefix: str, stream: str = "", at_s: float | None = None
    ) -> PrefixDeleteReceipt:
        """Batch-remove every object under a prefix.

        Costed as a *single* LIST followed by N DELETE requests — the
        shape retention sweeps take against a real object store —
        rather than N client-side list+delete round trips. Capacity is
        re-sampled once, after the whole batch.
        """
        issued = (
            self.clock.now
            if at_s is None
            else max(at_s, self.clock.now)
        )
        # One enumeration serves both the size bookkeeping and the
        # deletes (the backend's own delete_prefix would LIST again).
        keys = self.backend.list_objects(
            StorageRequest(OP_LIST, prefix, stream=stream)
        )
        freed_logical = 0
        for key in keys:
            freed_logical += self.object_size(key)
        freed_physical = freed_logical * self.config.replication_factor
        for key in keys:
            self.backend.delete_object(
                StorageRequest(OP_DELETE, key, stream=stream)
            )
        completed = issued + self.costs.for_op(OP_LIST).duration_s(
            len(keys), self._rng
        )
        self._record_op(
            OP_LIST, prefix, len(keys), 0, issued, completed - issued, stream
        )
        delete_cost = self.costs.for_op(OP_DELETE)
        for key in keys:
            physical = (
                self._sizes.pop(key, 0) * self.config.replication_factor
            )
            duration = delete_cost.duration_s(0, self._rng)
            self._record_op(
                OP_DELETE, key, 0, physical, completed, duration, stream
            )
            completed += duration
        if self.arbiter is not None and stream:
            self.arbiter.credit_delete(stream, freed_physical)
        if keys:
            self._record_capacity(max(completed, issued))
        return PrefixDeleteReceipt(
            prefix=prefix,
            keys=tuple(keys),
            freed_logical_bytes=freed_logical,
            freed_physical_bytes=freed_physical,
            issued_s=issued,
            completed_s=completed,
        )

    def exists(self, key: str, stream: str = "") -> bool:
        """HEAD probe: is the key present?"""
        present = self.backend.head_object(
            StorageRequest(OP_HEAD, key, stream=stream)
        )
        self._record_op(
            OP_HEAD,
            key,
            0,
            0,
            self.clock.now,
            self.costs.for_op(OP_HEAD).duration_s(0, self._rng),
            stream,
        )
        return present

    def list_keys(self, prefix: str = "", stream: str = "") -> list[str]:
        """LIST request: all keys under a prefix, sorted."""
        keys = self.backend.list_objects(
            StorageRequest(OP_LIST, prefix, stream=stream)
        )
        self._record_op(
            OP_LIST,
            prefix,
            len(keys),
            0,
            self.clock.now,
            self.costs.for_op(OP_LIST).duration_s(len(keys), self._rng),
            stream,
        )
        return keys

    def object_size(self, key: str) -> int:
        """Logical size of a stored object.

        Sizes of objects written by this process are tracked in memory;
        objects inherited from a previous process (a durable backend
        reopened after a restart) fall back to reading the backend.
        """
        try:
            return self._sizes[key]
        except KeyError:
            if self.backend.exists(key):
                size = len(self.backend.read(key))
                self._sizes[key] = size
                return size
            raise StorageError(f"no size recorded for {key!r}") from None
