"""The simulated remote object store.

Checkpoints are written to "remote object storage to provide high
availability (including replications) and storage scalability" (paper
section 4). This store wraps a byte backend with:

* **timing** — transfers are serialised on a storage :class:`Timeline`
  in simulated time, at the configured bandwidth and per-op latency;
* **replication accounting** — physical bytes = logical x factor;
* **capacity accounting** — live logical/physical bytes over time, the
  series behind Fig 16, plus an optional hard capacity limit;
* **a transfer log** — the series behind Fig 15's bandwidth numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import StorageConfig
from ..distributed.clock import SimClock, Timeline
from ..errors import CapacityExceededError, ObjectExistsError, StorageError
from .backends import Backend, InMemoryBackend
from .bandwidth import (
    BandwidthArbiter,
    Transfer,
    TransferLog,
    transfer_time_s,
)


@dataclass(frozen=True)
class PutReceipt:
    """Completion record of a PUT."""

    key: str
    logical_bytes: int
    physical_bytes: int
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class CapacityPoint:
    """Live capacity at one moment in simulated time."""

    time_s: float
    logical_bytes: int
    physical_bytes: int


@dataclass(frozen=True)
class StoreStats:
    """Aggregate store statistics."""

    live_logical_bytes: int
    live_physical_bytes: int
    peak_physical_bytes: int
    total_bytes_written: int
    num_objects: int


class ObjectStore:
    """Bandwidth- and capacity-accounted object storage in sim time."""

    def __init__(
        self,
        config: StorageConfig,
        clock: SimClock,
        backend: Backend | None = None,
        arbiter: BandwidthArbiter | None = None,
    ) -> None:
        self.config = config
        self.clock = clock
        self.backend = backend if backend is not None else InMemoryBackend()
        self.timeline = Timeline(clock, "storage")
        self.log = TransferLog()
        self.arbiter = arbiter
        self._sizes: dict[str, int] = {}
        self._capacity_series: list[CapacityPoint] = []
        self._peak_physical = 0
        self._total_written = 0
        self._record_capacity(clock.now)

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------

    @property
    def live_logical_bytes(self) -> int:
        return sum(self._sizes.values())

    @property
    def live_physical_bytes(self) -> int:
        return self.live_logical_bytes * self.config.replication_factor

    def _record_capacity(self, time_s: float) -> None:
        physical = self.live_physical_bytes
        self._peak_physical = max(self._peak_physical, physical)
        self._capacity_series.append(
            CapacityPoint(time_s, self.live_logical_bytes, physical)
        )

    def capacity_series(self) -> list[CapacityPoint]:
        """Live-bytes-over-time samples (one per mutation)."""
        return list(self._capacity_series)

    def stats(self) -> StoreStats:
        return StoreStats(
            live_logical_bytes=self.live_logical_bytes,
            live_physical_bytes=self.live_physical_bytes,
            peak_physical_bytes=self._peak_physical,
            total_bytes_written=self._total_written,
            num_objects=len(self._sizes),
        )

    # ------------------------------------------------------------------
    # Object operations
    # ------------------------------------------------------------------

    def put(
        self,
        key: str,
        data: bytes,
        overwrite: bool = False,
        earliest: float | None = None,
        stream: str = "",
    ) -> PutReceipt:
        """Store an object; occupies the storage link in sim time.

        ``earliest`` defers the transfer start (the pipelined checkpoint
        writer passes the chunk's quantization-finish time here).
        ``stream`` tags the transfer with its owning job on a shared
        store; when an arbiter is attached, the stream's capacity quota
        is checked (and charged) before any link time is spent.
        """
        if not key:
            raise StorageError("object key must be non-empty")
        if self.backend.exists(key) and not overwrite:
            raise ObjectExistsError(f"object {key!r} already exists")
        logical = len(data)
        physical = logical * self.config.replication_factor
        previous = self._sizes.get(key, 0)
        if self.config.capacity_bytes is not None:
            projected = (
                self.live_physical_bytes
                - previous * self.config.replication_factor
                + physical
            )
            if projected > self.config.capacity_bytes:
                raise CapacityExceededError(
                    f"PUT {key!r} would raise physical usage to "
                    f"{projected} bytes, over the "
                    f"{self.config.capacity_bytes}-byte capacity"
                )
        charged = physical - previous * self.config.replication_factor
        if self.arbiter is not None and stream:
            self.arbiter.admit_put(stream, charged)
        duration = transfer_time_s(
            physical, self.config.write_bandwidth, self.config.latency_s
        )
        span = self.timeline.submit(
            duration, label=f"put:{key}", earliest=earliest
        )
        try:
            self.backend.write(key, data)
        except Exception:
            # The bytes never landed: return the quota charge so a
            # failing backend cannot leak a stream's budget away.
            if self.arbiter is not None and stream:
                self.arbiter.credit_delete(stream, charged)
            raise
        self._sizes[key] = logical
        self._total_written += physical
        self.log.record(
            Transfer(key, physical, span.start, span.end, "put", stream)
        )
        if self.arbiter is not None and stream:
            self.arbiter.on_transfer(stream, physical, "put")
        self._record_capacity(span.end)
        return PutReceipt(key, logical, physical, span.start, span.end)

    def get(
        self,
        key: str,
        earliest: float | None = None,
        stream: str = "",
    ) -> bytes:
        """Fetch an object (timed on the shared storage timeline).

        ``earliest`` floors the transfer start at the caller's own
        simulated time — on a shared store the reading job's clock may
        be ahead of the store's, and a restore must not be timed before
        the failure that triggered it.
        """
        data = self.backend.read(key)
        duration = transfer_time_s(
            len(data), self.config.read_bandwidth, self.config.latency_s
        )
        span = self.timeline.submit(
            duration, label=f"get:{key}", earliest=earliest
        )
        self.log.record(
            Transfer(key, len(data), span.start, span.end, "get", stream)
        )
        if self.arbiter is not None and stream:
            self.arbiter.on_transfer(stream, len(data), "get")
        return data

    def delete(
        self, key: str, stream: str = "", at_s: float | None = None
    ) -> None:
        """Remove an object and update capacity accounting.

        ``at_s`` timestamps the capacity sample with the deleting job's
        clock (shared stores lag behind per-job clocks); ``stream``
        credits the freed physical bytes back to the job's quota.
        """
        physical = self._sizes.get(key, 0) * self.config.replication_factor
        self.backend.delete(key)
        self._sizes.pop(key, None)
        if self.arbiter is not None and stream:
            self.arbiter.credit_delete(stream, physical)
        when = self.clock.now if at_s is None else max(at_s, self.clock.now)
        self._record_capacity(when)

    def exists(self, key: str) -> bool:
        return self.backend.exists(key)

    def list_keys(self, prefix: str = "") -> list[str]:
        return self.backend.list_keys(prefix)

    def object_size(self, key: str) -> int:
        """Logical size of a stored object.

        Sizes of objects written by this process are tracked in memory;
        objects inherited from a previous process (a durable backend
        reopened after a restart) fall back to reading the backend.
        """
        try:
            return self._sizes[key]
        except KeyError:
            if self.backend.exists(key):
                size = len(self.backend.read(key))
                self._sizes[key] = size
                return size
            raise StorageError(f"no size recorded for {key!r}") from None
