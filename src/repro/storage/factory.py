"""Backend factory: build a byte backend from a :class:`BackendConfig`.

Call sites stopped instantiating backend classes directly — examples,
the CLI and :func:`repro.experiments.build_experiment` all go through
:func:`make_backend`, so switching a run from the in-memory default to
the S3-style remote backend (or a file/mirrored one) is a pure config
change: ``BackendConfig(kind="s3like", part_size_bytes=...)``.
"""

from __future__ import annotations

from ..config import BackendConfig, StorageConfig
from ..errors import ConfigError
from .backends import Backend, FileBackend, InMemoryBackend, MirroredBackend
from .cache import CacheTierBackend
from .remote import RemoteObjectBackend, s3like_costs
from .requests import OpCostSuite


def make_backend(
    backend_config: BackendConfig | None = None,
    storage_config: StorageConfig | None = None,
) -> Backend:
    """Construct the configured byte backend.

    ``storage_config`` supplies the link bandwidths the ``s3like``
    kind streams bytes at (its request latencies come from the backend
    config); in-process kinds ignore it and keep the store's legacy
    config-derived timing.

    When ``cache_bytes > 0``, the configured backend becomes the *far*
    tier of a :class:`~repro.storage.cache.CacheTierBackend`; with
    ``cache_bytes = 0`` the bare backend is returned untouched, so a
    cache-free config times bit-identically to the seed.
    """
    storage = storage_config if storage_config is not None else StorageConfig()
    config = (
        backend_config if backend_config is not None else storage.backend
    )
    inner = _make_far_backend(config, storage)
    if config.cache_bytes <= 0:
        return inner
    # In-process far tiers carry costs=None (they defer to the store's
    # config-derived suite); the cache needs the far price table up
    # front, so derive the same suite here.
    far_costs = (
        inner.costs
        if inner.costs is not None
        else OpCostSuite.from_storage_config(storage)
    )
    return CacheTierBackend(
        inner,
        capacity_bytes=config.cache_bytes,
        policy=config.cache_policy,
        far_costs=far_costs,
    )


def _make_far_backend(
    config: BackendConfig, storage: StorageConfig
) -> Backend:
    if config.kind == "memory":
        return InMemoryBackend()
    if config.kind == "file":
        if config.root is None:
            raise ConfigError(
                "BackendConfig(kind='file') needs a root directory"
            )
        return FileBackend(config.root)
    if config.kind == "mirrored":
        return MirroredBackend(
            [InMemoryBackend() for _ in range(config.replicas)]
        )
    if config.kind == "s3like":
        costs = s3like_costs(
            write_bandwidth=storage.write_bandwidth,
            read_bandwidth=storage.read_bandwidth,
            put_latency_s=config.put_latency_s,
            get_latency_s=config.get_latency_s,
            list_latency_s=config.list_latency_s,
            delete_latency_s=config.delete_latency_s,
            head_latency_s=config.head_latency_s,
            list_per_key_s=config.list_per_key_s,
            jitter_s=config.jitter_s,
            tail_prob=config.tail_prob,
            tail_factor=config.tail_factor,
        )
        return RemoteObjectBackend(
            costs=costs,
            part_size_bytes=config.part_size_bytes,
            fanout=config.multipart_fanout,
            range_get_bytes=config.range_get_bytes,
            seed=config.seed,
            failure_probs=config.failure_probs,
            failure_seed=config.failure_seed,
        )
    raise ConfigError(f"unknown backend kind {config.kind!r}")
