"""The S3-style remote object backend: request costs, multipart, ranges.

Unlike the in-process backends, a remote object store answers *API
requests*: every PUT/GET/LIST/DELETE/HEAD pays a base request latency
on top of the link's per-byte streaming time, large uploads go through
the multipart protocol (create -> N part PUTs -> complete), and large
reads may be issued as ranged GETs. :class:`RemoteObjectBackend` models
exactly that surface:

* it *owns* its :class:`~repro.storage.requests.OpCostSuite` — per-class
  base latencies (with optional jitter/tail) plus the per-byte times the
  shared link imposes;
* multipart uploads are first-class: parts accumulate invisibly under an
  upload id, and only a successful *complete* request makes the
  assembled object visible — an aborted upload leaves **no** observable
  key, which is the atomicity property checkpoint writers rely on;
* ``part_size_bytes``/``fanout``/``range_get_bytes`` tell the timed
  store how to split large transfers and how many parallel request
  lanes amortise per-part latency.

The timed fan-out itself lives in
:meth:`repro.storage.object_store.ObjectStore.put` /
:meth:`~repro.storage.object_store.ObjectStore.get`, which drive this
backend's control-plane methods.
"""

from __future__ import annotations

import numpy as np

from ..config import BackendConfig
from ..errors import StorageError, TransientStorageError
from .backends import InMemoryBackend
from .requests import (
    OP_CLASSES,
    OP_PUT,
    OpCostModel,
    OpCostSuite,
    StorageRequest,
)

#: Single source of the s3like latency defaults: the same values a
#: default ``BackendConfig`` carries, so direct ``s3like_costs()``
#: callers and the config factory can never drift apart.
_DEFAULTS = BackendConfig(kind="s3like")


def s3like_costs(
    write_bandwidth: float,
    read_bandwidth: float,
    put_latency_s: float = _DEFAULTS.put_latency_s,
    get_latency_s: float = _DEFAULTS.get_latency_s,
    list_latency_s: float = _DEFAULTS.list_latency_s,
    delete_latency_s: float = _DEFAULTS.delete_latency_s,
    head_latency_s: float = _DEFAULTS.head_latency_s,
    list_per_key_s: float = _DEFAULTS.list_per_key_s,
    jitter_s: float = _DEFAULTS.jitter_s,
    tail_prob: float = _DEFAULTS.tail_prob,
    tail_factor: float = _DEFAULTS.tail_factor,
) -> OpCostSuite:
    """An S3-shaped cost table: real request latencies per op class.

    The default latencies (from :class:`BackendConfig`) are
    order-of-magnitude figures for an object store in the same region
    (tens of milliseconds per request); bytes stream at the configured
    link bandwidths. LIST pays a small per-key time on top of its base
    latency.
    """
    shared = dict(
        jitter_s=jitter_s, tail_prob=tail_prob, tail_factor=tail_factor
    )
    return OpCostSuite(
        put=OpCostModel(
            base_latency_s=put_latency_s,
            seconds_per_byte=1.0 / write_bandwidth,
            **shared,
        ),
        get=OpCostModel(
            base_latency_s=get_latency_s,
            seconds_per_byte=1.0 / read_bandwidth,
            **shared,
        ),
        list=OpCostModel(
            base_latency_s=list_latency_s,
            seconds_per_byte=list_per_key_s,
            **shared,
        ),
        delete=OpCostModel(base_latency_s=delete_latency_s, **shared),
        head=OpCostModel(base_latency_s=head_latency_s, **shared),
    )


class RemoteObjectBackend(InMemoryBackend):
    """S3-style storage: costed requests, multipart upload, ranged GET.

    The data plane is the in-memory dict store; what makes it "remote"
    is everything around it — the backend-owned per-op-class cost
    suite, the multipart control plane below, and the capability knobs
    (``part_size_bytes``/``fanout``/``range_get_bytes``) that tell the
    timed store how to fan large transfers out.
    """

    def __init__(
        self,
        costs: OpCostSuite,
        part_size_bytes: int | None = 8 * 1024 * 1024,
        fanout: int = 4,
        range_get_bytes: int | None = None,
        seed: int = 0x53AC,
        failure_probs: dict[str, float] | None = None,
        failure_seed: int = 0xFA17,
    ) -> None:
        if part_size_bytes is not None and part_size_bytes < 1:
            raise StorageError("part_size_bytes must be positive")
        if fanout < 1:
            raise StorageError("fanout must be >= 1")
        if range_get_bytes is not None and range_get_bytes < 1:
            raise StorageError("range_get_bytes must be positive")
        super().__init__(costs=costs)
        self.part_size_bytes = part_size_bytes
        self.fanout = fanout
        self.range_get_bytes = range_get_bytes
        #: RNG for jitter/tail draws; owned here so runs stay
        #: deterministic under the backend's seed.
        self.rng = np.random.default_rng(seed)
        #: Per-op-class transient-failure probability (throttle/5xx
        #: style): each request of a class with probability p > 0 fails
        #: with :class:`TransientStorageError` *before* touching data,
        #: to be re-issued by the transfer engine's retry loop. Draws
        #: come from a dedicated RNG so a fixed ``failure_seed`` makes
        #: the injected sequence deterministic — and independent of the
        #: jitter/tail draws above.
        self.failure_probs: dict[str, float] = {}
        for op, prob in (failure_probs or {}).items():
            if op not in OP_CLASSES:
                raise StorageError(
                    f"unknown op class {op!r} in failure_probs"
                )
            if not 0.0 <= prob <= 1.0:
                raise StorageError(
                    f"failure probability for {op} must be in [0, 1]"
                )
            if prob > 0.0:
                self.failure_probs[op] = prob
        self._failure_rng = np.random.default_rng(failure_seed)
        #: Injected-failure count per op class (for reports/tests).
        self.failures_injected: dict[str, int] = {}
        #: upload id -> (key, {part_number: bytes}); parts are invisible
        #: until the upload completes.
        self._uploads: dict[str, tuple[str, dict[int, bytes]]] = {}
        self._upload_counter = 0
        #: Multipart bookkeeping (for reports/tests).
        self.multipart_completed = 0
        self.multipart_aborted = 0

    # -- transient-failure injection -----------------------------------

    def _maybe_fail(self, op: str, key: str) -> None:
        """Roll the op class's failure die before serving a request."""
        prob = self.failure_probs.get(op, 0.0)
        if prob > 0.0 and float(self._failure_rng.random()) < prob:
            self.failures_injected[op] = (
                self.failures_injected.get(op, 0) + 1
            )
            raise TransientStorageError(
                f"injected transient {op} failure on {key!r}"
            )

    def put_object(self, request: StorageRequest, data: bytes) -> None:
        self._maybe_fail(request.op, request.key)
        super().put_object(request, data)

    def get_object(self, request: StorageRequest) -> bytes:
        self._maybe_fail(request.op, request.key)
        return super().get_object(request)

    def head_object(self, request: StorageRequest) -> bool:
        self._maybe_fail(request.op, request.key)
        return super().head_object(request)

    def delete_object(self, request: StorageRequest) -> None:
        self._maybe_fail(request.op, request.key)
        super().delete_object(request)

    def list_objects(self, request: StorageRequest) -> list[str]:
        self._maybe_fail(request.op, request.key)
        return super().list_objects(request)

    # -- multipart control plane ---------------------------------------

    def create_multipart(self, key: str) -> str:
        """Open a multipart upload; returns its upload id."""
        upload_id = f"mpu-{self._upload_counter:06d}"
        self._upload_counter += 1
        self._uploads[upload_id] = (key, {})
        return upload_id

    def upload_part(
        self, upload_id: str, part_number: int, data: bytes
    ) -> None:
        """Stage one part (1-based numbering, S3 style)."""
        if part_number < 1:
            raise StorageError(f"part numbers are 1-based: {part_number}")
        key, parts = self._upload(upload_id)
        # Part uploads are PUT-class requests and fail like them.
        self._maybe_fail(OP_PUT, f"{key}#part{part_number}")
        parts[part_number] = bytes(data)

    def complete_multipart(self, upload_id: str) -> None:
        """Assemble the staged parts into the visible object."""
        key, parts = self._upload(upload_id)
        self._maybe_fail(OP_PUT, f"{key}#complete")
        if not parts:
            raise StorageError(f"upload {upload_id!r} has no parts")
        assembled = b"".join(
            parts[number] for number in sorted(parts)
        )
        self._objects[key] = assembled
        del self._uploads[upload_id]
        self.multipart_completed += 1

    def abort_multipart(self, upload_id: str) -> None:
        """Discard a partial upload; the object never becomes visible."""
        self._upload(upload_id)
        del self._uploads[upload_id]
        self.multipart_aborted += 1

    def pending_uploads(self) -> list[str]:
        """Upload ids opened but neither completed nor aborted."""
        return sorted(self._uploads)

    def _upload(self, upload_id: str) -> tuple[str, dict[int, bytes]]:
        try:
            return self._uploads[upload_id]
        except KeyError:
            raise StorageError(
                f"no open multipart upload {upload_id!r}"
            ) from None
