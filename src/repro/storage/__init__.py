"""Simulated remote object storage: backends, bandwidth, capacity.

:mod:`.backends` holds the byte stores (in-memory, file, mirrored,
crash-injecting); :mod:`.bandwidth` the transfer log, the tier-aware
fair-queueing :class:`BandwidthArbiter` and per-stream quotas;
:mod:`.object_store` the timed, replication- and capacity-accounted
store the checkpoint stack writes through.
"""

from .backends import (
    Backend,
    CrashingBackend,
    FileBackend,
    InMemoryBackend,
    MirroredBackend,
)
from .bandwidth import (
    TIER_EXPERIMENTAL,
    TIER_PROD,
    TIER_RANK,
    BandwidthArbiter,
    StreamState,
    Transfer,
    TransferLog,
    transfer_time_s,
)
from .object_store import (
    CapacityPoint,
    ObjectStore,
    PutReceipt,
    StoreStats,
)

__all__ = [
    "TIER_EXPERIMENTAL",
    "TIER_PROD",
    "TIER_RANK",
    "Backend",
    "BandwidthArbiter",
    "CapacityPoint",
    "CrashingBackend",
    "FileBackend",
    "InMemoryBackend",
    "MirroredBackend",
    "ObjectStore",
    "PutReceipt",
    "StoreStats",
    "StreamState",
    "Transfer",
    "TransferLog",
    "transfer_time_s",
]
