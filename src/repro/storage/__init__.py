"""Simulated remote object storage: backends, bandwidth, capacity."""

from .backends import (
    Backend,
    CrashingBackend,
    FileBackend,
    InMemoryBackend,
    MirroredBackend,
)
from .bandwidth import (
    BandwidthArbiter,
    StreamState,
    Transfer,
    TransferLog,
    transfer_time_s,
)
from .object_store import (
    CapacityPoint,
    ObjectStore,
    PutReceipt,
    StoreStats,
)

__all__ = [
    "Backend",
    "BandwidthArbiter",
    "CapacityPoint",
    "CrashingBackend",
    "FileBackend",
    "InMemoryBackend",
    "MirroredBackend",
    "ObjectStore",
    "PutReceipt",
    "StoreStats",
    "StreamState",
    "Transfer",
    "TransferLog",
    "transfer_time_s",
]
