"""Simulated remote object storage: backends, bandwidth, capacity."""

from .backends import Backend, FileBackend, InMemoryBackend, MirroredBackend
from .bandwidth import Transfer, TransferLog, transfer_time_s
from .object_store import (
    CapacityPoint,
    ObjectStore,
    PutReceipt,
    StoreStats,
)

__all__ = [
    "Backend",
    "CapacityPoint",
    "FileBackend",
    "InMemoryBackend",
    "MirroredBackend",
    "ObjectStore",
    "PutReceipt",
    "StoreStats",
    "Transfer",
    "TransferLog",
    "transfer_time_s",
]
