"""Simulated remote object storage: requests, backends, bandwidth.

:mod:`.requests` defines the request-oriented vocabulary (op classes,
per-class :class:`OpCostModel` cost tables, typed :class:`OpReceipt`
completions); :mod:`.backends` the byte stores (in-memory, file,
mirrored, crash-injecting) behind the request interface;
:mod:`.remote` the S3-style :class:`RemoteObjectBackend` with multipart
upload and ranged GETs; :mod:`.factory` the :func:`make_backend`
config-driven constructor; :mod:`.bandwidth` the transfer log, the
tier-aware fair-queueing :class:`BandwidthArbiter` and per-stream
quotas; :mod:`.object_store` the timed, replication- and
capacity-accounted store the checkpoint stack writes through.
"""

from .backends import (
    Backend,
    CrashingBackend,
    FileBackend,
    InMemoryBackend,
    MirroredBackend,
)
from .bandwidth import (
    TIER_EXPERIMENTAL,
    TIER_PROD,
    TIER_RANK,
    TIER_SERVING,
    BandwidthArbiter,
    StreamState,
    Transfer,
    TransferLog,
    projected_queue_delay_s,
    transfer_time_s,
)
from .cache import (
    CACHE_POLICIES,
    POLICY_WRITE_BACK,
    POLICY_WRITE_THROUGH,
    CacheTierBackend,
    CacheTierStats,
    find_cache_tier,
    nvme_costs,
)
from .engine import (
    ADMISSION_MODES,
    AdmissionController,
    AdmissionDecision,
    PartPlan,
    StagedPut,
    TransferEngine,
)
from .factory import make_backend
from .object_store import (
    CapacityPoint,
    ObjectStore,
    PrefixDeleteReceipt,
    PutReceipt,
    StoreStats,
)
from .remote import RemoteObjectBackend, s3like_costs
from .requests import (
    DATA_OPS,
    OP_CLASSES,
    OP_DELETE,
    OP_GET,
    OP_HEAD,
    OP_LIST,
    OP_PUT,
    OpCostModel,
    OpCostSuite,
    OpLog,
    OpReceipt,
    StorageRequest,
    clip_range,
)

__all__ = [
    "ADMISSION_MODES",
    "CACHE_POLICIES",
    "POLICY_WRITE_BACK",
    "POLICY_WRITE_THROUGH",
    "CacheTierBackend",
    "CacheTierStats",
    "find_cache_tier",
    "nvme_costs",
    "AdmissionController",
    "AdmissionDecision",
    "DATA_OPS",
    "OP_CLASSES",
    "OP_DELETE",
    "OP_GET",
    "OP_HEAD",
    "OP_LIST",
    "OP_PUT",
    "TIER_EXPERIMENTAL",
    "TIER_PROD",
    "TIER_RANK",
    "TIER_SERVING",
    "Backend",
    "BandwidthArbiter",
    "CapacityPoint",
    "CrashingBackend",
    "FileBackend",
    "InMemoryBackend",
    "MirroredBackend",
    "ObjectStore",
    "OpCostModel",
    "OpCostSuite",
    "OpLog",
    "OpReceipt",
    "PartPlan",
    "PrefixDeleteReceipt",
    "PutReceipt",
    "RemoteObjectBackend",
    "StagedPut",
    "StorageRequest",
    "StoreStats",
    "StreamState",
    "Transfer",
    "TransferEngine",
    "TransferLog",
    "clip_range",
    "make_backend",
    "projected_queue_delay_s",
    "s3like_costs",
    "transfer_time_s",
]
