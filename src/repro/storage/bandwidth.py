"""Bandwidth accounting for the simulated remote store.

Checkpoint frequency "is bounded by the available write bandwidth to
remote storage" (paper section 4.3); every reduction factor in Fig 17 is
ultimately a statement about bytes pushed through this link. The store
serialises transfers on a :class:`~repro.distributed.clock.Timeline` and
records them here so experiments can ask for average or windowed write
bandwidth after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import StorageError


@dataclass(frozen=True)
class Transfer:
    """One completed transfer over the storage link."""

    key: str
    nbytes: int  # physical bytes, i.e. logical * replication
    start_s: float
    end_s: float
    kind: str  # "put" or "get"

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class TransferLog:
    """Ordered record of transfers with bandwidth queries."""

    def __init__(self) -> None:
        self._transfers: list[Transfer] = []

    def record(self, transfer: Transfer) -> None:
        self._transfers.append(transfer)

    def transfers(self, kind: str | None = None) -> list[Transfer]:
        if kind is None:
            return list(self._transfers)
        return [t for t in self._transfers if t.kind == kind]

    def total_bytes(self, kind: str = "put") -> int:
        return sum(t.nbytes for t in self._transfers if t.kind == kind)

    def average_bandwidth(
        self, start_s: float, end_s: float, kind: str = "put"
    ) -> float:
        """Mean bytes/sec of ``kind`` transfers overlapping the window.

        Each transfer contributes pro-rata for the fraction of its
        duration inside the window — the natural definition for the
        interval-bandwidth series of Fig 15.
        """
        if end_s <= start_s:
            raise StorageError(
                f"empty bandwidth window [{start_s}, {end_s}]"
            )
        moved = 0.0
        for t in self._transfers:
            if t.kind != kind or t.end_s <= start_s or t.start_s >= end_s:
                continue
            overlap = min(t.end_s, end_s) - max(t.start_s, start_s)
            if t.duration_s > 0:
                moved += t.nbytes * (overlap / t.duration_s)
            else:
                moved += t.nbytes
        return moved / (end_s - start_s)


def transfer_time_s(
    nbytes: int, bandwidth: float, latency_s: float
) -> float:
    """Link-level transfer duration: fixed latency + bytes / bandwidth."""
    if nbytes < 0:
        raise StorageError(f"negative transfer size {nbytes}")
    if bandwidth <= 0:
        raise StorageError(f"non-positive bandwidth {bandwidth}")
    if latency_s < 0:
        raise StorageError(f"negative latency {latency_s}")
    return latency_s + nbytes / bandwidth
