"""Bandwidth accounting and arbitration for the simulated remote store.

Checkpoint frequency "is bounded by the available write bandwidth to
remote storage" (paper section 4.3); every reduction factor in Fig 17 is
ultimately a statement about bytes pushed through this link. The store
serialises transfers on a :class:`~repro.distributed.clock.Timeline` and
records them here so experiments can ask for average or windowed write
bandwidth after the fact.

The fleet extension shares one store between many jobs. Each transfer is
tagged with its *stream* (one stream per job), and a
:class:`BandwidthArbiter` decides which backlogged stream's next chunk
gets the link. Arbitration is two-level:

* **Priority tiers** (paper section 2.2: production vs experimental
  jobs). Every stream belongs to a tier — :data:`TIER_PROD` or
  :data:`TIER_EXPERIMENTAL` — and a backlogged prod stream always wins
  the link over a backlogged experimental one. The fleet scheduler
  additionally lets prod traffic *preempt* an experimental job's staged
  write (abort-and-requeue); the arbiter records those preemptions per
  stream via :meth:`BandwidthArbiter.record_preemption`.
* **Start-time fair queueing** within a tier — the same discipline
  packet schedulers use: each stream carries a virtual-time tag that
  advances by ``bytes / weight`` per transfer, and the stream with the
  smallest tag is served next. Over any window much longer than one
  chunk, equal-weight streams converge to equal byte shares and a
  weight-2 stream gets twice the share of a weight-1 stream, while the
  link never moves more than its configured bandwidth (it is a single
  serial resource).

The arbiter also owns per-stream *capacity quotas*: a job whose live
physical bytes would exceed its quota has its PUT rejected with
:class:`~repro.errors.CapacityExceededError` before any link time or
backend write is spent — other jobs are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CapacityExceededError, StorageError

#: Priority tier of the inference serving plane: user-facing row
#: lookups are latency-critical, so a backlogged serving stream beats
#: even production training traffic to the link.
TIER_SERVING = "serving"
#: Priority tier of production jobs: their backlogged transfers always
#: beat experimental ones to the link, and they may preempt experimental
#: staged writes entirely.
TIER_PROD = "prod"
#: Priority tier of experimental jobs: served by fair queueing only
#: when no prod or serving stream is backlogged.
TIER_EXPERIMENTAL = "experimental"
#: Priority tier of peer-replication delta streams: best-effort mirror
#: traffic that must never delay checkpoint writes, so it ranks below
#: every training tier on a contended link.
TIER_REPLICATION = "replication"

#: Tier service order on a contended link (lower rank serves first).
TIER_RANK = {
    TIER_SERVING: 0,
    TIER_PROD: 1,
    TIER_EXPERIMENTAL: 2,
    TIER_REPLICATION: 3,
}


@dataclass(frozen=True)
class Transfer:
    """One completed transfer over the storage link."""

    key: str
    nbytes: int  # physical bytes, i.e. logical * replication
    start_s: float
    end_s: float
    kind: str  # "put" or "get"
    stream: str = ""  # owning stream/job ("" = untagged single-job use)

    @property
    def op(self) -> str:
        """Request op class of this transfer (``OP_PUT``/``OP_GET``).

        Derived from ``kind`` — only data-plane classes reach the
        transfer log — so write vs read link-load attribution (the
        fleet's split bandwidth series) can filter on the same op
        vocabulary the receipt layer uses.
        """
        return self.kind.upper()

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class TransferLog:
    """Ordered record of transfers with bandwidth queries."""

    def __init__(self) -> None:
        self._transfers: list[Transfer] = []
        # Per-(kind, stream) index: the fleet scheduler reads one
        # job's restore GETs around every crash, which must not scan
        # the whole fleet's transfer history each time.
        self._by_kind_stream: dict[tuple[str, str], list[Transfer]] = {}

    def record(self, transfer: Transfer) -> None:
        self._transfers.append(transfer)
        self._by_kind_stream.setdefault(
            (transfer.kind, transfer.stream), []
        ).append(transfer)

    def transfers(
        self, kind: str | None = None, stream: str | None = None
    ) -> list[Transfer]:
        if kind is not None and stream is not None:
            return list(self._by_kind_stream.get((kind, stream), ()))
        return [
            t
            for t in self._transfers
            if (kind is None or t.kind == kind)
            and (stream is None or t.stream == stream)
        ]

    def total_bytes(self, kind: str = "put", stream: str | None = None) -> int:
        return sum(
            t.nbytes
            for t in self._transfers
            if t.kind == kind and (stream is None or t.stream == stream)
        )

    def streams(self, kind: str | None = None) -> list[str]:
        """Distinct stream tags observed, sorted."""
        return sorted(
            {
                t.stream
                for t in self._transfers
                if kind is None or t.kind == kind
            }
        )

    def stream_shares(self, kind: str = "put") -> dict[str, float]:
        """Fraction of ``kind`` bytes each stream moved."""
        total = self.total_bytes(kind)
        if total == 0:
            return {}
        return {
            stream: self.total_bytes(kind, stream) / total
            for stream in self.streams(kind)
        }

    def average_bandwidth(
        self,
        start_s: float,
        end_s: float,
        kind: str = "put",
        stream: str | None = None,
    ) -> float:
        """Mean bytes/sec of ``kind`` transfers overlapping the window.

        Each transfer contributes pro-rata for the fraction of its
        duration inside the window — the natural definition for the
        interval-bandwidth series of Fig 15.
        """
        if end_s <= start_s:
            raise StorageError(
                f"empty bandwidth window [{start_s}, {end_s}]"
            )
        moved = 0.0
        for t in self._transfers:
            if t.kind != kind or t.end_s <= start_s or t.start_s >= end_s:
                continue
            if stream is not None and t.stream != stream:
                continue
            overlap = min(t.end_s, end_s) - max(t.start_s, start_s)
            if t.duration_s > 0:
                moved += t.nbytes * (overlap / t.duration_s)
            else:
                moved += t.nbytes
        return moved / (end_s - start_s)


def projected_queue_delay_s(
    free_at: float,
    now: float,
    queued_bytes: int = 0,
    seconds_per_byte: float = 0.0,
) -> float:
    """Projected time a new transfer would queue behind the link.

    The same ``preempt_wait_s``-style backlog signal the tier
    preemption machinery measures — how far the storage timeline's
    ``free_at`` sits ahead of a caller's clock — extended with the
    service time of bytes already *announced* but not yet submitted
    (the transfer engine's staged parts). The fleet's dynamic admission
    controller defers checkpoint triggers when this projection exceeds
    one checkpoint interval.
    """
    if queued_bytes < 0:
        raise StorageError(f"negative queued bytes {queued_bytes}")
    if seconds_per_byte < 0:
        raise StorageError(
            f"negative per-byte time {seconds_per_byte}"
        )
    return max(0.0, free_at - now) + queued_bytes * seconds_per_byte


def transfer_time_s(
    nbytes: int, bandwidth: float, latency_s: float
) -> float:
    """Link-level transfer duration: fixed latency + bytes / bandwidth."""
    if nbytes < 0:
        raise StorageError(f"negative transfer size {nbytes}")
    if bandwidth <= 0:
        raise StorageError(f"non-positive bandwidth {bandwidth}")
    if latency_s < 0:
        raise StorageError(f"negative latency {latency_s}")
    return latency_s + nbytes / bandwidth


# ----------------------------------------------------------------------
# Multi-stream arbitration
# ----------------------------------------------------------------------


@dataclass
class StreamState:
    """Accounting for one registered transfer stream (one job)."""

    stream_id: str
    weight: float = 1.0
    #: Priority class: prod beats experimental. Experimental is the
    #: default so an untiered registration can never silently outrank
    #: a fleet's production streams.
    tier: str = TIER_EXPERIMENTAL
    quota_bytes: int | None = None  # live physical-byte ceiling
    charged_bytes: int = 0  # live physical bytes attributed
    served_put_bytes: int = 0
    served_get_bytes: int = 0
    virtual_finish: float = 0.0  # SFQ finish tag (weighted bytes)
    transfers: int = 0
    quota_rejections: int = 0
    preemptions: int = 0  # staged writes of this stream aborted by prod

    @property
    def served_bytes(self) -> int:
        return self.served_put_bytes + self.served_get_bytes


class BandwidthArbiter:
    """Tier-aware fair-share scheduler and quota ledger for a shared link.

    The arbiter does not move bytes itself — the store's serial timeline
    does. It decides *order* (:meth:`pick`, used by the fleet scheduler
    to choose which backlogged job submits its next chunk or which
    crashed job restores first during a storm): priority tier first
    (prod beats experimental), start-time fair queueing within a tier.
    It also enforces *per-stream capacity quotas* (:meth:`admit_put` /
    :meth:`credit_delete`, called by the store around each mutation) and
    keeps the per-stream preemption ledger.
    """

    def __init__(self) -> None:
        self._streams: dict[str, StreamState] = {}
        self._virtual_time = 0.0  # max finish tag served so far
        # Sorted-view cache, invalidated on registration: streams()
        # sits on fleet summary paths and must not re-sort the whole
        # registry per call.
        self._sorted: list[StreamState] | None = None

    # -- registry ------------------------------------------------------

    def register(
        self,
        stream_id: str,
        weight: float = 1.0,
        quota_bytes: int | None = None,
        tier: str = TIER_EXPERIMENTAL,
    ) -> StreamState:
        if not stream_id:
            raise StorageError("stream id must be non-empty")
        if weight <= 0:
            raise StorageError(f"stream weight must be > 0, got {weight}")
        if quota_bytes is not None and quota_bytes <= 0:
            raise StorageError("stream quota must be positive")
        if tier not in TIER_RANK:
            raise StorageError(
                f"unknown tier {tier!r}; valid: {tuple(TIER_RANK)}"
            )
        if stream_id in self._streams:
            raise StorageError(f"stream {stream_id!r} already registered")
        state = StreamState(
            stream_id=stream_id,
            weight=weight,
            tier=tier,
            quota_bytes=quota_bytes,
        )
        self._streams[stream_id] = state
        self._sorted = None
        return state

    def stream(self, stream_id: str) -> StreamState:
        try:
            return self._streams[stream_id]
        except KeyError:
            raise StorageError(
                f"stream {stream_id!r} is not registered"
            ) from None

    def streams(self) -> list[StreamState]:
        if self._sorted is None:
            self._sorted = [
                self._streams[k] for k in sorted(self._streams)
            ]
        return list(self._sorted)

    # -- fair queueing -------------------------------------------------

    def pick(self, candidates: list[str]) -> str:
        """The backlogged stream to serve next: best tier, smallest tag.

        Priority is strict across tiers — a backlogged prod stream is
        always served before any experimental one. Within the winning
        tier, start-time fair queueing applies: smallest SFQ finish tag
        wins, ties break by stream id for determinism. Streams that have
        been idle re-enter at the current virtual time (standard SFQ),
        so an idle period never becomes a credit to burst later.
        """
        if not candidates:
            raise StorageError("no candidate streams to pick from")
        # Single pass, no sort: the historical sorted scan with a
        # strict-< tag comparison is exactly the minimum under
        # (tier rank, SFQ tag, stream id) — order-independent, so a
        # linear min over the candidates picks the identical stream in
        # O(k). This sits on the fleet's per-event dispatch path.
        virtual_time = self._virtual_time
        best: str | None = None
        best_key: tuple[int, float, str] | None = None
        for stream_id in candidates:
            state = self.stream(stream_id)
            key = (
                TIER_RANK[state.tier],
                max(state.virtual_finish, virtual_time),
                stream_id,
            )
            if best_key is None or key < best_key:
                best, best_key = stream_id, key
        assert best is not None
        return best

    def record_preemption(self, stream_id: str) -> None:
        """Count a stream's staged write aborted by prod-tier traffic."""
        self.stream(stream_id).preemptions += 1

    def on_transfer(self, stream_id: str, nbytes: int, kind: str) -> None:
        """Advance a stream's virtual tag after it used the link."""
        state = self.stream(stream_id)
        start_tag = max(state.virtual_finish, self._virtual_time)
        state.virtual_finish = start_tag + nbytes / state.weight
        self._virtual_time = max(self._virtual_time, start_tag)
        state.transfers += 1
        if kind == "put":
            state.served_put_bytes += nbytes
        else:
            state.served_get_bytes += nbytes

    # -- quotas --------------------------------------------------------

    def admit_put(self, stream_id: str, delta_physical: int) -> None:
        """Charge a PUT's physical bytes against the stream's quota.

        ``delta_physical`` is the *net* change in live physical bytes
        (an overwrite's previous size already subtracted). Raises
        :class:`CapacityExceededError` — and charges nothing — if the
        stream would exceed its quota; other streams are unaffected.
        """
        state = self.stream(stream_id)
        projected = state.charged_bytes + delta_physical
        if state.quota_bytes is not None and projected > state.quota_bytes:
            state.quota_rejections += 1
            raise CapacityExceededError(
                f"stream {stream_id!r}: PUT would raise live usage to "
                f"{projected} bytes, over its {state.quota_bytes}-byte "
                "quota"
            )
        state.charged_bytes = max(0, projected)

    def credit_delete(self, stream_id: str, physical_bytes: int) -> None:
        """Return a deleted object's physical bytes to the stream."""
        state = self.stream(stream_id)
        state.charged_bytes = max(0, state.charged_bytes - physical_bytes)

    # -- fleet-level metrics -------------------------------------------

    def fairness_index(self, kind: str = "put") -> float:
        """Jain's fairness index over weighted per-stream service.

        Computed over *every* registered stream: 1.0 means each
        received service exactly proportional to its weight; 1/N means
        one stream took everything while the rest starved. 1.0 when no
        stream moved any bytes.
        """
        served = [
            s.served_put_bytes / s.weight
            if kind == "put"
            else s.served_get_bytes / s.weight
            for s in self._streams.values()
        ]
        total = sum(served)
        if not served or total == 0:
            return 1.0
        return total * total / (len(served) * sum(x * x for x in served))
