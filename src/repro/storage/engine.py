"""The part-granular transfer engine behind the object store.

Historically the write path was scattered across three layers: the
checkpoint writer quantized on the caller's thread and announced whole
chunk PUTs, the fleet scheduler interleaved those whole-chunk
submissions under a fixed ``max_concurrent_writes`` cap, and the object
store fanned multipart parts out over request lanes *inside* one
``put()`` call — so parts of a single chunk always hit the link
back-to-back, retry plumbing stayed dead, and admission control could
not see the backlog it was supposed to govern. The
:class:`TransferEngine` owns all of that in one place:

* **staged, part-granular PUTs** — :meth:`TransferEngine.stage_put`
  decomposes a payload into multipart *parts* (one part for single-shot
  uploads) and returns a :class:`StagedPut` whose parts are submitted
  one at a time; a fleet scheduler can interleave part submissions from
  many jobs, so cross-job fairness holds at part granularity while the
  drain-immediately path stays timing-identical to the old ``put()``;
* **a retry/backoff loop** — transient request failures (the seeded
  per-op-class injection on
  :class:`~repro.storage.remote.RemoteObjectBackend`) are re-issued
  with exponential backoff; wasted attempt latency and backoff are
  charged in simulated time and every receipt's
  :attr:`~repro.storage.requests.OpReceipt.retries` counts them;
* **a quantization worker pool** — real background threads the
  checkpoint writer runs chunk quantization on, with busy/blocked
  accounting so the *measured* wall-time overlap (work hidden behind
  the caller's own progress) is reportable, mirroring what the
  simulated quantization lane models;
* **backlog-driven admission control** — :class:`AdmissionController`
  replaces the fixed concurrent-write cap: using the
  ``preempt_wait_s``-style backlog signal
  (:func:`~repro.storage.bandwidth.projected_queue_delay_s`, fed with
  the engine's queued-but-unsubmitted part bytes), it defers a new
  checkpoint trigger when the projected queue delay exceeds one
  checkpoint interval — admitting prod, deferring experimental. The
  legacy cap survives as the controller's *static* mode.

The read path is symmetric: :meth:`TransferEngine.stage_get` returns a
:class:`StagedGet` — a GET decomposed into ranged parts submitted one
at a time (one part when the object fits a single request), with the
same retry/backoff loop populating
:attr:`~repro.storage.requests.OpReceipt.retries` — so a fleet restore
storm drains at *part* granularity through the same arbiter instead of
head-of-line whole-chunk reads, and the admission controller's read
side (:meth:`AdmissionController.decide_get`) can pace experimental
restores on the combined read+write backlog while prod restores always
admit.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, TypeVar

from ..errors import (
    CapacityExceededError,
    ObjectExistsError,
    RetriesExhaustedError,
    StorageError,
    TransientStorageError,
)
from .bandwidth import TIER_PROD, Transfer, projected_queue_delay_s
from .requests import OP_GET, OP_HEAD, OP_PUT, OpReceipt, StorageRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .object_store import ObjectStore

T = TypeVar("T")

#: Valid admission-controller modes (write side).
ADMISSION_MODES = ("none", "static", "dynamic")

#: Valid read-side (restore) admission modes: reads have no static cap
#: — a restore is never optional, only *paceable*.
READ_ADMISSION_MODES = ("none", "dynamic")

# ----------------------------------------------------------------------
# Worker pool (real threads; shared across engines)
# ----------------------------------------------------------------------

#: One process-wide pool: engines are created per store and stores are
#: created by the hundreds in tests — per-engine executors would leak
#: threads. Accounting stays per-engine.
_POOL_LOCK = threading.Lock()
_POOL: ThreadPoolExecutor | None = None


def _shared_pool() -> ThreadPoolExecutor:
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = ThreadPoolExecutor(
                max_workers=4, thread_name_prefix="repro-engine"
            )
        return _POOL


class PoolTask:
    """Handle on one background task with wall-time accounting.

    ``result()`` measures how long the caller actually *blocked*; the
    task body measures how long it ran. Their difference is the wall
    time the pool hid behind the caller's own work — the measured
    counterpart of the simulated quantization lane's overlap.
    """

    def __init__(self, engine: "TransferEngine", future) -> None:
        self._engine = engine
        self._future = future

    def result(self) -> object:
        start = time.perf_counter()
        try:
            return self._future.result()
        finally:
            waited = time.perf_counter() - start
            with self._engine._pool_lock:
                self._engine.pool_wait_s += waited


@dataclass(frozen=True)
class PartPlan:
    """One planned multipart part of a staged PUT."""

    number: int  # 1-based, S3 style
    offset: int
    nbytes: int  # logical bytes in this part


class StagedPut:
    """A PUT decomposed into announced parts, submitted one at a time.

    Produced by :meth:`TransferEngine.stage_put`. Quota is charged and
    capacity checked at stage time (before any link time is spent);
    each :meth:`submit_next` call issues exactly one part request —
    retrying transient failures — and the final call issues the
    multipart completion and returns the :class:`OpReceipt`. Between
    submissions the staged parts count toward the engine's queued-byte
    backlog (the admission controller's signal). :meth:`abort` cancels
    an in-flight upload: no visible object, no orphaned parts, quota
    credited back.
    """

    def __init__(
        self,
        engine: "TransferEngine",
        key: str,
        data: bytes,
        *,
        overwrite: bool = False,
        earliest: float | None = None,
        stream: str = "",
    ) -> None:
        store = engine.store
        if not key:
            raise StorageError("object key must be non-empty")
        exists = engine.retry_probe(
            OP_HEAD, lambda: store.backend.exists(key)
        )
        if exists and not overwrite:
            raise ObjectExistsError(f"object {key!r} already exists")
        self.engine = engine
        self.store = store
        self.key = key
        self.data = data
        self.stream = stream
        self.earliest = earliest
        replication = store.config.replication_factor
        logical = len(data)
        self.logical_bytes = logical
        self.physical_bytes = logical * replication
        previous = store._sizes.get(key, 0)
        if store.config.capacity_bytes is not None:
            # Committed bytes plus every *other* staged write's
            # uncommitted bytes: two writes staged in the same
            # scheduler window must not jointly oversubscribe the hard
            # capacity limit just because neither has committed yet.
            in_flight = sum(
                s.uncommitted_physical_bytes for s in engine._staged
            )
            projected = (
                store.live_physical_bytes
                + in_flight
                - previous * replication
                + self.physical_bytes
            )
            if projected > store.config.capacity_bytes:
                raise CapacityExceededError(
                    f"PUT {key!r} would raise physical usage to "
                    f"{projected} bytes (including staged writes), "
                    f"over the {store.config.capacity_bytes}-byte "
                    "capacity"
                )
        self.charged = self.physical_bytes - previous * replication
        if store.arbiter is not None and stream:
            store.arbiter.admit_put(stream, self.charged)
        part_size = store.backend.part_size_bytes
        self.multipart = part_size is not None and logical > part_size
        if self.multipart:
            assert part_size is not None
            self.parts = tuple(
                PartPlan(i + 1, offset, min(part_size, logical - offset))
                for i, offset in enumerate(range(0, logical, part_size))
            )
        else:
            self.parts = (PartPlan(1, 0, logical),)
        self._next = 0
        self._issued = max(store.clock.now, earliest or 0.0)
        self._started: float | None = None
        self._first_byte: float | None = None
        self._upload_id: str | None = None
        self._lane_free: list[float] | None = None
        self._retries = 0
        self._receipt: OpReceipt | None = None
        self._aborted = False
        engine._register(self)

    # -- introspection -------------------------------------------------

    @property
    def num_parts(self) -> int:
        return len(self.parts)

    @property
    def next_part_number(self) -> int:
        return min(self._next + 1, self.num_parts)

    @property
    def next_ready_s(self) -> float:
        """Earliest simulated time the next part's data is available."""
        return self._issued

    @property
    def done(self) -> bool:
        return self._receipt is not None

    @property
    def aborted(self) -> bool:
        return self._aborted

    @property
    def receipt(self) -> OpReceipt | None:
        return self._receipt

    @property
    def remaining_physical_bytes(self) -> int:
        """Physical bytes announced but not yet on the link."""
        if self.done or self._aborted:
            return 0
        replication = self.store.config.replication_factor
        return sum(
            p.nbytes for p in self.parts[self._next :]
        ) * replication

    @property
    def uncommitted_physical_bytes(self) -> int:
        """The write's full physical size until it commits or aborts —
        what a concurrent stager must count against hard capacity."""
        if self.done or self._aborted:
            return 0
        return self.physical_bytes

    # -- submission ----------------------------------------------------

    def submit_next(self) -> OpReceipt | None:
        """Issue the next announced part request.

        Returns ``None`` while parts remain; on the last part the
        multipart completion request is issued, the store's accounting
        is committed, and the final receipt is returned. Any failure
        (transient retries exhausted, a crashing backend) aborts the
        upload first — no partial object ever becomes visible.
        """
        if self._receipt is not None:
            return self._receipt
        if self._aborted:
            raise StorageError(
                f"staged PUT {self.key!r} was already aborted"
            )
        try:
            return self._submit_next()
        except Exception:
            self.abort()
            raise

    def _submit_next(self) -> OpReceipt | None:
        if not self.multipart:
            receipt = self._submit_single()
        else:
            receipt = self._submit_part()
        if receipt is not None:
            self._receipt = receipt
            self.store._commit_put(self.key, self.logical_bytes, receipt)
            self.engine._deregister(self)
        return receipt

    def _submit_single(self) -> OpReceipt:
        """One PUT request: latency + bytes, serialised on the link."""
        store = self.store
        cost = store.cost_for(OP_PUT, self.key, self.logical_bytes)
        request = StorageRequest(
            OP_PUT, self.key, self.logical_bytes, stream=self.stream
        )
        _, retries, penalty, latency = self.engine.attempt_request(
            OP_PUT,
            lambda: store.backend.put_object(request, self.data),
            cost=cost,
        )
        duration = penalty + latency + cost.transfer_s(self.physical_bytes)
        span = store.timeline.submit(
            duration, label=f"put:{self.key}", earliest=self.earliest
        )
        store.log.record(
            Transfer(
                self.key,
                self.physical_bytes,
                span.start,
                span.end,
                "put",
                self.stream,
            )
        )
        if store.arbiter is not None and self.stream:
            store.arbiter.on_transfer(
                self.stream, self.physical_bytes, "put"
            )
        self._next = 1
        return OpReceipt(
            op=OP_PUT,
            key=self.key,
            logical_bytes=self.logical_bytes,
            physical_bytes=self.physical_bytes,
            issued_s=self._issued,
            start_s=span.start,
            first_byte_s=min(span.start + penalty + latency, span.end),
            completed_s=span.end,
            retries=retries,
            stream=self.stream,
        )

    def _submit_part(self) -> OpReceipt | None:
        """One multipart part PUT; the last part also completes.

        Parts round-robin over ``backend.fanout`` upload lanes: a
        lane's next part cannot issue before its previous part's bytes
        finished, but *different* lanes' request latencies overlap the
        link's byte time — with fanout > 1 only the first part's
        latency is exposed, the amortisation multipart exists for.
        Between two submissions another stream's parts may claim the
        link; this stream's lanes simply queue behind them, which is
        exactly the part-granular sharing the engine exists for.
        """
        store = self.store
        backend = store.backend
        cost = store.cost_for(OP_PUT, self.key, self.logical_bytes)
        replication = store.config.replication_factor
        fanout = max(1, backend.fanout)
        if self._next == 0:
            # Occupancy starts when the link could serve this op
            # (queueing behind earlier transfers is queue_s, not
            # duration_s — the same semantics single-shot receipts
            # carry).
            self._started = max(self._issued, store.timeline.free_at)
            self._upload_id = backend.create_multipart(self.key)
            self._lane_free = [self._started] * fanout
        assert self._upload_id is not None and self._lane_free is not None
        part = self.parts[self._next]
        chunk = self.data[part.offset : part.offset + part.nbytes]
        lane = self._next % fanout
        upload_id, number = self._upload_id, part.number
        _, retries, penalty, latency = self.engine.attempt_request(
            OP_PUT,
            lambda: backend.upload_part(upload_id, number, chunk),
            cost=cost,
        )
        self._retries += retries
        physical = part.nbytes * replication
        span = store.timeline.submit(
            cost.transfer_s(physical),
            label=f"put-part:{self.key}:{part.number}",
            earliest=self._lane_free[lane] + penalty + latency,
        )
        self._lane_free[lane] = span.end
        if self._first_byte is None:
            self._first_byte = span.start
        store.log.record(
            Transfer(
                f"{self.key}#part{part.number}",
                physical,
                span.start,
                span.end,
                "put",
                self.stream,
            )
        )
        if store.arbiter is not None and self.stream:
            store.arbiter.on_transfer(self.stream, physical, "put")
        self._next += 1
        if self._next < len(self.parts):
            return None
        # The completion request publishes the object: one more
        # PUT-class latency, control-plane only (no link bytes).
        _, retries, penalty, latency = self.engine.attempt_request(
            OP_PUT, lambda: backend.complete_multipart(upload_id), cost=cost
        )
        self._retries += retries
        self._upload_id = None
        completed = max(self._lane_free) + penalty + latency
        assert self._started is not None and self._first_byte is not None
        return OpReceipt(
            op=OP_PUT,
            key=self.key,
            logical_bytes=self.logical_bytes,
            physical_bytes=self.physical_bytes,
            issued_s=self._issued,
            start_s=self._started,
            first_byte_s=self._first_byte,
            completed_s=completed,
            parts=len(self.parts),
            retries=self._retries,
            stream=self.stream,
        )

    def abort(self) -> None:
        """Cancel the staged write: abort the multipart upload (parts
        already staged become unreachable, the object never becomes
        visible) and credit the quota charge back to the stream."""
        if self._receipt is not None or self._aborted:
            return
        self._aborted = True
        if self._upload_id is not None:
            self.store.backend.abort_multipart(self._upload_id)
            self._upload_id = None
        if self.store.arbiter is not None and self.stream:
            self.store.arbiter.credit_delete(self.stream, self.charged)
        self.engine._deregister(self)


class StagedGet:
    """A GET decomposed into announced ranged parts, submitted one at a
    time — the read-side mirror of :class:`StagedPut`.

    Produced by :meth:`TransferEngine.stage_get`. Against a backend
    advertising ``range_get_bytes``, a whole-object read larger than
    that window splits into ranged sub-GETs fanned over the backend's
    request lanes; anything else is a single part. Each
    :meth:`submit_next` call issues exactly one request — retrying
    transient failures through the engine's backoff loop — and the
    final call records the :class:`OpReceipt` (``retries`` populated)
    in the store's op log. Between submissions the announced parts
    count toward the engine's queued *read* backlog, the signal the
    read-side admission controller paces experimental restores on, and
    another stream's parts may claim the link — so a restore storm
    drains at part granularity instead of head-of-line whole-chunk
    reads. Draining a staged GET uninterrupted is timing-identical to
    :meth:`TransferEngine.get`.
    """

    def __init__(
        self,
        engine: "TransferEngine",
        key: str,
        *,
        earliest: float | None = None,
        stream: str = "",
        byte_range: tuple[int, int] | None = None,
    ) -> None:
        store = engine.store
        if not key:
            raise StorageError("object key must be non-empty")
        self.engine = engine
        self.store = store
        self.key = key
        self.stream = stream
        self.earliest = earliest
        self.byte_range = byte_range
        window = store.backend.range_get_bytes
        known = store._sizes.get(key)
        self.ranged = (
            byte_range is None
            and window is not None
            and known is not None
            and known > window
        )
        self._issued = max(store.clock.now, earliest or 0.0)
        if self.ranged:
            assert window is not None and known is not None
            self.size = known
            self.parts: tuple[tuple[int, int], ...] = tuple(
                (start, min(start + window, known))
                for start in range(0, known, window)
            )
        else:
            # Single-shot: the whole object, or just the explicit
            # range, in one request. The expected byte count feeds the
            # queued-read backlog signal, so a ranged probe of a huge
            # object must announce only its window — and an object of
            # unknown size announces 0 until its bytes arrive.
            if byte_range is not None:
                start, stop = byte_range
                expected = max(0, stop - start)
                if known is not None:
                    expected = min(expected, max(0, known - start))
            else:
                expected = known if known is not None else 0
            self.size = expected
            self.parts = ((0, expected),)
        self._next = 0
        self._pieces: list[bytes] = []
        self._lane_free: list[float] | None = None
        self._started: float | None = None
        self._first_byte: float | None = None
        self._retries = 0
        self._receipt: OpReceipt | None = None
        self._aborted = False
        engine._register_get(self)

    # -- introspection -------------------------------------------------

    @property
    def num_parts(self) -> int:
        return len(self.parts)

    @property
    def next_part_number(self) -> int:
        return min(self._next + 1, self.num_parts)

    @property
    def next_ready_s(self) -> float:
        """Earliest simulated time the next part could be requested."""
        return self._issued

    @property
    def done(self) -> bool:
        return self._receipt is not None

    @property
    def aborted(self) -> bool:
        return self._aborted

    @property
    def receipt(self) -> OpReceipt | None:
        return self._receipt

    @property
    def remaining_bytes(self) -> int:
        """Bytes announced but not yet requested on the link."""
        if self.done or self._aborted:
            return 0
        return sum(stop - start for start, stop in self.parts[self._next :])

    def data(self) -> bytes:
        """The assembled object bytes (only once ``done``)."""
        if self._receipt is None:
            raise StorageError(
                f"staged GET {self.key!r} has unsubmitted parts"
            )
        return b"".join(self._pieces)

    # -- submission ----------------------------------------------------

    def submit_next(self) -> OpReceipt | None:
        """Issue the next announced ranged (or whole-object) request.

        Returns ``None`` while parts remain; the last part records and
        returns the final :class:`OpReceipt`.
        """
        if self._receipt is not None:
            return self._receipt
        if self._aborted:
            raise StorageError(
                f"staged GET {self.key!r} was already aborted"
            )
        try:
            receipt = (
                self._submit_part() if self.ranged else self._submit_single()
            )
        except Exception:
            self.abort()
            raise
        if receipt is not None:
            self._receipt = receipt
            self.store.ops.record(receipt)
            self.engine._deregister_get(self)
        return receipt

    def _submit_single(self) -> OpReceipt:
        """One GET request: latency + bytes, serialised on the link."""
        store = self.store
        cost = store.cost_for(OP_GET, self.key)
        request = StorageRequest(
            OP_GET, self.key, stream=self.stream, byte_range=self.byte_range
        )
        data, retries, penalty, latency = self.engine.attempt_request(
            OP_GET, lambda: store.backend.get_object(request), cost=cost
        )
        duration = penalty + latency + cost.transfer_s(len(data))
        span = store.timeline.submit(
            duration, label=f"get:{self.key}", earliest=self.earliest
        )
        store.log.record(
            Transfer(
                self.key, len(data), span.start, span.end, "get", self.stream
            )
        )
        if store.arbiter is not None and self.stream:
            store.arbiter.on_transfer(self.stream, len(data), "get")
        self._pieces.append(data)
        self._next = 1
        return OpReceipt(
            op=OP_GET,
            key=self.key,
            logical_bytes=len(data),
            physical_bytes=len(data),
            issued_s=self._issued,
            start_s=span.start,
            first_byte_s=min(span.start + penalty + latency, span.end),
            completed_s=span.end,
            retries=retries,
            stream=self.stream,
        )

    def _submit_part(self) -> OpReceipt | None:
        """One ranged sub-GET; lanes overlap request latencies exactly
        as :class:`StagedPut` parts do on the write side."""
        store = self.store
        cost = store.cost_for(OP_GET, self.key)
        fanout = max(1, store.backend.fanout)
        if self._next == 0:
            self._started = max(self._issued, store.timeline.free_at)
            self._lane_free = [self._started] * fanout
        assert self._lane_free is not None
        index = self._next
        start, stop = self.parts[index]
        request = StorageRequest(
            OP_GET, self.key, stream=self.stream, byte_range=(start, stop)
        )
        chunk, retries, penalty, latency = self.engine.attempt_request(
            OP_GET, lambda: store.backend.get_object(request), cost=cost
        )
        self._retries += retries
        lane = index % fanout
        span = store.timeline.submit(
            cost.transfer_s(len(chunk)),
            label=f"get-range:{self.key}:{index}",
            earliest=self._lane_free[lane] + penalty + latency,
        )
        self._lane_free[lane] = span.end
        if self._first_byte is None:
            self._first_byte = span.start
        self._pieces.append(chunk)
        store.log.record(
            Transfer(
                f"{self.key}#range{index}",
                len(chunk),
                span.start,
                span.end,
                "get",
                self.stream,
            )
        )
        if store.arbiter is not None and self.stream:
            store.arbiter.on_transfer(self.stream, len(chunk), "get")
        self._next += 1
        if self._next < len(self.parts):
            return None
        assert self._started is not None and self._first_byte is not None
        return OpReceipt(
            op=OP_GET,
            key=self.key,
            logical_bytes=self.size,
            physical_bytes=self.size,
            issued_s=self._issued,
            start_s=self._started,
            first_byte_s=self._first_byte,
            completed_s=max(self._lane_free),
            parts=len(self.parts),
            retries=self._retries,
            stream=self.stream,
        )

    def abort(self) -> None:
        """Abandon the staged read (nothing to roll back server-side —
        GETs mutate no state — but the queued-byte backlog is released
        so the admission signal does not count a dead restore)."""
        if self._receipt is not None or self._aborted:
            return
        self._aborted = True
        self.engine._deregister_get(self)


class TransferEngine:
    """Owns staged parts, retries, the worker pool, and backlog signals
    for one :class:`~repro.storage.object_store.ObjectStore`."""

    def __init__(self, store: "ObjectStore") -> None:
        self.store = store
        self.max_retries = store.config.max_retries
        self.retry_backoff_s = store.config.retry_backoff_s
        self._staged: list[StagedPut] = []
        self._staged_gets: list[StagedGet] = []
        #: Successful-request retry ledger per op class (probe retries
        #: included; receipts carry the per-request counts).
        self.retries_by_op: dict[str, int] = {}
        self._pool_lock = threading.Lock()
        self.pool_tasks = 0
        self.pool_busy_s = 0.0
        self.pool_wait_s = 0.0

    # -- staged-put registry -------------------------------------------

    def _register(self, staged: StagedPut) -> None:
        self._staged.append(staged)

    def _deregister(self, staged: StagedPut) -> None:
        try:
            self._staged.remove(staged)
        except ValueError:  # pragma: no cover - defensive
            pass

    def staged_puts(self) -> list[StagedPut]:
        """Staged writes with parts still awaiting submission."""
        return list(self._staged)

    def queued_put_bytes(self) -> int:
        """Physical bytes announced (staged) but not yet on the link."""
        return sum(s.remaining_physical_bytes for s in self._staged)

    def projected_queue_delay_s(self, now: float) -> float:
        """The backlog signal: link busy time past ``now`` plus the
        service time of every queued (announced, unsubmitted) part."""
        return projected_queue_delay_s(
            self.store.timeline.free_at,
            now,
            self.queued_put_bytes(),
            self.store.costs.for_op(OP_PUT).seconds_per_byte,
        )

    # -- staged-get registry -------------------------------------------

    def _register_get(self, staged: StagedGet) -> None:
        self._staged_gets.append(staged)

    def _deregister_get(self, staged: StagedGet) -> None:
        try:
            self._staged_gets.remove(staged)
        except ValueError:  # pragma: no cover - defensive
            pass

    def staged_gets(self) -> list[StagedGet]:
        """Staged reads with parts still awaiting submission."""
        return list(self._staged_gets)

    def queued_get_bytes(self) -> int:
        """Bytes announced for reading (staged) but not yet requested."""
        return sum(s.remaining_bytes for s in self._staged_gets)

    def projected_restore_delay_s(self, now: float) -> float:
        """The read-side backlog signal: link busy time past ``now``
        plus the service time of every queued part on *either* side of
        the link — staged write parts at the PUT byte rate and staged
        read parts at the GET byte rate. A restore queues behind both,
        so the read-side admission controller paces on their sum."""
        write_backlog = self.projected_queue_delay_s(now)
        return write_backlog + self.queued_get_bytes() * (
            self.store.costs.for_op(OP_GET).seconds_per_byte
        )

    # -- retry / backoff -----------------------------------------------

    def attempt_request(
        self, op: str, call: Callable[[], T], cost=None
    ) -> tuple[T, int, float, float]:
        """Issue one backend request through the retry/backoff loop.

        Returns ``(result, retries, penalty_s, latency_s)``:
        ``penalty_s`` is the simulated time the failed attempts cost
        (each wasted attempt's request latency plus exponential
        backoff) and ``latency_s`` the successful attempt's request
        latency — callers add both to the op's timed duration. Raises
        :class:`RetriesExhaustedError` once ``max_retries`` re-issues
        all failed transiently.

        ``cost`` overrides the op-class cost model the request's
        latency draws from — callers that price per *request* (a cache
        tier's hit/miss pricing via ``store.cost_for``, the cache's
        far-tier flushes) pass the resolved model; ``None`` keeps the
        store-level suite.
        """
        if cost is None:
            cost = self.store.costs.for_op(op)
        rng = self.store._rng
        retries = 0
        penalty = 0.0
        while True:
            latency = cost.latency_s(rng)
            try:
                result = call()
            except TransientStorageError as exc:
                if retries >= self.max_retries:
                    raise RetriesExhaustedError(
                        f"{op} request failed transiently "
                        f"{retries + 1} times (retry budget "
                        f"{self.max_retries}): {exc}"
                    ) from exc
                penalty += latency + self.retry_backoff_s * (2.0**retries)
                retries += 1
                continue
            if retries:
                self.retries_by_op[op] = (
                    self.retries_by_op.get(op, 0) + retries
                )
            return result, retries, penalty, latency

    def retry_probe(self, op: str, call: Callable[[], T]) -> T:
        """Retry loop for free (untimed) probes, e.g. the overwrite
        check inside ``put`` — same budget, no simulated cost."""
        retries = 0
        while True:
            try:
                result = call()
            except TransientStorageError as exc:
                if retries >= self.max_retries:
                    raise RetriesExhaustedError(
                        f"{op} probe failed transiently "
                        f"{retries + 1} times (retry budget "
                        f"{self.max_retries}): {exc}"
                    ) from exc
                retries += 1
                continue
            if retries:
                self.retries_by_op[op] = (
                    self.retries_by_op.get(op, 0) + retries
                )
            return result

    # -- PUT path ------------------------------------------------------

    def stage_put(
        self,
        key: str,
        data: bytes,
        *,
        overwrite: bool = False,
        earliest: float | None = None,
        stream: str = "",
    ) -> StagedPut:
        """Announce a PUT as individually submittable parts."""
        return StagedPut(
            self,
            key,
            data,
            overwrite=overwrite,
            earliest=earliest,
            stream=stream,
        )

    def put(
        self,
        key: str,
        data: bytes,
        *,
        overwrite: bool = False,
        earliest: float | None = None,
        stream: str = "",
    ) -> OpReceipt:
        """Stage a PUT and drain it immediately (parts back-to-back).

        The single-caller path: timing is identical to staging the same
        write and submitting every part without interleaved traffic.
        """
        staged = self.stage_put(
            key, data, overwrite=overwrite, earliest=earliest, stream=stream
        )
        receipt = None
        while receipt is None:
            receipt = staged.submit_next()
        return receipt

    # -- GET path ------------------------------------------------------

    def stage_get(
        self,
        key: str,
        *,
        earliest: float | None = None,
        stream: str = "",
        byte_range: tuple[int, int] | None = None,
    ) -> StagedGet:
        """Announce a GET as individually submittable ranged parts."""
        return StagedGet(
            self,
            key,
            earliest=earliest,
            stream=stream,
            byte_range=byte_range,
        )

    def get(
        self,
        key: str,
        earliest: float | None = None,
        stream: str = "",
        byte_range: tuple[int, int] | None = None,
    ) -> bytes:
        """Stage a GET and drain it immediately (parts back-to-back).

        The single-caller path: timing is identical to staging the same
        read and submitting every ranged part without interleaved
        traffic.
        """
        staged = self.stage_get(
            key, earliest=earliest, stream=stream, byte_range=byte_range
        )
        while not staged.done:
            staged.submit_next()
        return staged.data()

    # -- worker pool ---------------------------------------------------

    def submit_task(self, fn: Callable[..., T], *args: object) -> PoolTask:
        """Run ``fn(*args)`` on the background worker pool.

        The checkpoint writer submits chunk quantization here so the
        measured wall time overlaps the caller's own encode/submit
        work, like the simulated quantization lane overlaps the
        storage timeline.
        """

        def wrapped() -> T:
            start = time.perf_counter()
            try:
                return fn(*args)
            finally:
                busy = time.perf_counter() - start
                with self._pool_lock:
                    self.pool_busy_s += busy

        with self._pool_lock:
            self.pool_tasks += 1
        return PoolTask(self, _shared_pool().submit(wrapped))

    @property
    def pool_overlap_s(self) -> float:
        """Measured seconds of pool work hidden behind caller progress
        (task busy time minus time callers actually blocked waiting)."""
        with self._pool_lock:
            return max(0.0, self.pool_busy_s - self.pool_wait_s)


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one checkpoint-trigger admission check."""

    admitted: bool
    reason: str  # "admitted", "static_cap", or "backlog"
    projected_delay_s: float
    threshold_s: float | None = None


class AdmissionController:
    """Decides whether a checkpoint trigger may start writing now.

    Three modes:

    * ``"none"`` — every trigger is admitted (no control);
    * ``"static"`` — the legacy fixed cap: defer whenever
      ``active_writes >= max_concurrent`` (the deprecation target of
      ``FleetConfig.max_concurrent_writes``), tier-blind;
    * ``"dynamic"`` — backlog-driven: prod triggers are always
      admitted; an experimental trigger is deferred when the engine's
      projected queue delay (link busy time plus queued part bytes)
      exceeds ``backlog_factor`` x the job's own checkpoint interval.
      A checkpoint that would queue longer than the interval it covers
      is stale before it lands — deferring it sheds load exactly when
      the shared store is saturated.

    The *read side* (``read_mode``, :meth:`decide_get`) paces restores
    instead of skipping them — a restore is never optional, so there is
    no static cap and a deferral means "wait out the backlog", not
    "drop the read". In ``"dynamic"`` read mode an experimental
    restore is deferred while the engine's projected *restore* delay
    (write backlog plus queued read parts) exceeds
    ``read_backlog_factor`` x the job's checkpoint interval; prod
    restores always admit, preserving the storm's prod-first drain.
    """

    def __init__(
        self,
        engine: TransferEngine,
        mode: str = "none",
        max_concurrent: int | None = None,
        backlog_factor: float = 1.0,
        read_mode: str = "none",
        read_backlog_factor: float = 1.0,
    ) -> None:
        if mode not in ADMISSION_MODES:
            raise StorageError(
                f"unknown admission mode {mode!r}; valid: "
                f"{ADMISSION_MODES}"
            )
        if read_mode not in READ_ADMISSION_MODES:
            raise StorageError(
                f"unknown read admission mode {read_mode!r}; valid: "
                f"{READ_ADMISSION_MODES}"
            )
        if mode == "static" and (
            max_concurrent is None or max_concurrent < 1
        ):
            raise StorageError(
                "static admission mode needs max_concurrent >= 1"
            )
        if backlog_factor <= 0:
            raise StorageError("backlog_factor must be > 0")
        if read_backlog_factor <= 0:
            raise StorageError("read_backlog_factor must be > 0")
        self.engine = engine
        self.mode = mode
        self.read_mode = read_mode
        self.max_concurrent = max_concurrent
        self.backlog_factor = backlog_factor
        self.read_backlog_factor = read_backlog_factor
        self.admitted = 0
        self.deferrals_by_stream: dict[str, int] = {}
        self.deferrals_by_tier: dict[str, int] = {}
        self.read_admitted = 0
        self.read_deferrals_by_stream: dict[str, int] = {}
        self.read_deferrals_by_tier: dict[str, int] = {}

    @property
    def total_deferrals(self) -> int:
        return sum(self.deferrals_by_stream.values())

    @property
    def total_read_deferrals(self) -> int:
        return sum(self.read_deferrals_by_stream.values())

    def _defer(
        self,
        stream: str,
        tier: str,
        reason: str,
        projected: float,
        threshold: float | None,
    ) -> AdmissionDecision:
        self.deferrals_by_stream[stream] = (
            self.deferrals_by_stream.get(stream, 0) + 1
        )
        self.deferrals_by_tier[tier] = (
            self.deferrals_by_tier.get(tier, 0) + 1
        )
        return AdmissionDecision(False, reason, projected, threshold)

    def decide(
        self,
        *,
        stream: str,
        tier: str,
        now: float,
        interval_s: float | None = None,
        active_writes: int = 0,
    ) -> AdmissionDecision:
        """Admit or defer one checkpoint trigger.

        ``interval_s`` is the job's measured checkpoint interval (None
        on its first trigger, which is always admitted in dynamic
        mode); ``active_writes`` feeds the static cap.
        """
        projected = self.engine.projected_queue_delay_s(now)
        if self.mode == "static":
            assert self.max_concurrent is not None
            if active_writes >= self.max_concurrent:
                return self._defer(
                    stream, tier, "static_cap", projected, None
                )
        elif self.mode == "dynamic":
            if tier != TIER_PROD and interval_s is not None:
                threshold = self.backlog_factor * interval_s
                if projected > threshold:
                    return self._defer(
                        stream, tier, "backlog", projected, threshold
                    )
        self.admitted += 1
        return AdmissionDecision(True, "admitted", projected)

    def decide_get(
        self,
        *,
        stream: str,
        tier: str,
        now: float,
        interval_s: float | None = None,
    ) -> AdmissionDecision:
        """Admit or defer one restore (read-side pacing).

        A deferred decision carries the projection and threshold so the
        caller can wait out exactly ``projected - threshold`` seconds
        and then proceed — restores are paced, never dropped.
        ``interval_s`` is the job's measured checkpoint interval (None
        before the second trigger, which always admits).
        """
        projected = self.engine.projected_restore_delay_s(now)
        if (
            self.read_mode == "dynamic"
            and tier != TIER_PROD
            and interval_s is not None
        ):
            threshold = self.read_backlog_factor * interval_s
            if projected > threshold:
                self.read_deferrals_by_stream[stream] = (
                    self.read_deferrals_by_stream.get(stream, 0) + 1
                )
                self.read_deferrals_by_tier[tier] = (
                    self.read_deferrals_by_tier.get(tier, 0) + 1
                )
                return AdmissionDecision(
                    False, "read_backlog", projected, threshold
                )
        self.read_admitted += 1
        return AdmissionDecision(True, "admitted", projected)
