"""The near/far cache tier: an NVMe-class tier in front of any backend.

Check-N-Run writes to a single far tier (remote object storage), but
real deployments put an NVMe-class *near* tier in front of it —
TrainingCXL and FastPersist (PAPERS.md) both argue a mixed hierarchy is
what makes frequent checkpointing affordable. :class:`CacheTierBackend`
makes the :class:`~repro.storage.backends.Backend` interface
*composable*: it layers a capacity-bounded near tier (with its own
:class:`~repro.storage.requests.OpCostSuite`, so near GETs are cheap
and far PUTs stay expensive) over any existing backend — the S3-style
:class:`~repro.storage.remote.RemoteObjectBackend` in particular.

Two policies:

* ``write_through`` — every PUT lands in the far tier *before* the
  near copy is updated and the op is priced at far-PUT cost; the near
  tier only accelerates reads. A failed far write leaves neither tier
  updated.
* ``write_back`` — a PUT is acknowledged at *near*-tier cost; the
  object is marked **dirty** and flushed to the far tier
  asynchronously through the attached
  :class:`~repro.storage.engine.TransferEngine`'s retry/backoff loop
  (a background flusher drains the oldest dirty objects whenever dirty
  bytes exceed the ``flush_watermark`` fraction of capacity).

Capacity pressure evicts **clean LRU first**; when only dirty objects
remain, the oldest dirty object is force-flushed to the far tier and
then evicted — dirty bytes are never dropped. Objects larger than the
whole tier bypass it and go straight to the far tier.

Because each request's price depends on *where* the bytes are, the
cache exposes :meth:`CacheTierBackend.cost_model` — a per-request
refinement of the backend-level suite that the timed store consults
through :meth:`~repro.storage.object_store.ObjectStore.cost_for`:
a GET of a near-resident key costs a near GET (a cache hit), a miss
costs a far GET, and a write-back PUT acks at near cost. Restore
storms spill gracefully: the wrapper advertises the far tier's
``range_get_bytes``/``fanout``, so reads that miss the near tier fan
out as ranged sub-GETs against the far tier exactly as they would
without the cache.

Crash semantics mirror the far tier's: a flush is one far PUT, so a
crash injected mid-flush (:class:`~repro.storage.backends\
.CrashingBackend` wrapping the far tier) fires *before* the far write
— the far tier keeps the old object or none, never a torn one, and the
near copy simply stays dirty until a later flush succeeds.
:meth:`CacheTierBackend.wipe_near` models losing the NVMe tier
outright: dirty-but-unflushed objects disappear, and restore planning
(``plan_resume``) falls back to the newest fully-flushed checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import ObjectNotFoundError, StorageError
from .backends import Backend
from .requests import (
    OP_DELETE,
    OP_GET,
    OP_HEAD,
    OP_PUT,
    OpCostModel,
    OpCostSuite,
    StorageRequest,
    clip_range,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import TransferEngine

#: Write policies the cache tier supports.
POLICY_WRITE_BACK = "write_back"
POLICY_WRITE_THROUGH = "write_through"
CACHE_POLICIES = (POLICY_WRITE_BACK, POLICY_WRITE_THROUGH)

#: NVMe-class defaults: ~100 us request latency, multi-GiB/s streaming.
_NVME_LATENCY_S = 0.0001
_NVME_WRITE_BW = 2.0 * 1024**3
_NVME_READ_BW = 5.0 * 1024**3


def nvme_costs(
    write_bandwidth: float = _NVME_WRITE_BW,
    read_bandwidth: float = _NVME_READ_BW,
    latency_s: float = _NVME_LATENCY_S,
) -> OpCostSuite:
    """An NVMe-shaped cost table for the near tier.

    Order-of-magnitude figures for a local flash device: ~100 us per
    request (vs tens of milliseconds for the far tier) and streaming
    at device bandwidth. Deterministic — no jitter or tail modes; the
    interesting randomness lives in the far tier.
    """
    return OpCostSuite(
        put=OpCostModel(
            base_latency_s=latency_s,
            seconds_per_byte=1.0 / write_bandwidth,
        ),
        get=OpCostModel(
            base_latency_s=latency_s,
            seconds_per_byte=1.0 / read_bandwidth,
        ),
        list=OpCostModel(base_latency_s=latency_s),
        delete=OpCostModel(base_latency_s=latency_s),
        head=OpCostModel(base_latency_s=latency_s),
    )


@dataclass(frozen=True)
class CacheTierStats:
    """A point-in-time snapshot of the cache tier's counters."""

    capacity_bytes: int
    policy: str
    hits: int
    misses: int
    evictions: int
    dirty_flushes: int
    forced_flushes: int
    flush_failures: int
    bypass_writes: int
    flushed_bytes: int
    near_objects: int
    near_bytes: int
    dirty_backlog: int
    dirty_bytes: int
    peak_dirty_bytes: int
    near_wipes: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CacheTierBackend(Backend):
    """A capacity-bounded near tier layered over a far backend.

    ``far`` is any :class:`Backend` (the far tier); ``capacity_bytes``
    bounds the near tier's resident bytes. ``far_costs`` supplies the
    far tier's cost table when the far backend itself carries none
    (in-process backends defer to the store's config-derived suite —
    the factory passes that suite here so pricing stays consistent).

    The wrapper deliberately advertises ``part_size_bytes = None``:
    the near tier absorbs every write whole (an NVMe write needs no
    multipart protocol), so acks never pay per-part request latency.
    Ranged-GET capability (``range_get_bytes``/``fanout``) delegates to
    the far tier — reads that miss the cache spill to ranged far GETs.
    """

    def __init__(
        self,
        far: Backend,
        capacity_bytes: int,
        policy: str = POLICY_WRITE_BACK,
        near_costs: OpCostSuite | None = None,
        far_costs: OpCostSuite | None = None,
        flush_watermark: float = 0.5,
    ) -> None:
        if capacity_bytes < 1:
            raise StorageError("cache capacity_bytes must be positive")
        if policy not in CACHE_POLICIES:
            raise StorageError(
                f"unknown cache policy {policy!r}; valid: {CACHE_POLICIES}"
            )
        if not 0.0 < flush_watermark <= 1.0:
            raise StorageError("flush_watermark must be in (0, 1]")
        self.far = far
        self.capacity_bytes = capacity_bytes
        self.policy = policy
        self.flush_watermark = flush_watermark
        self.near_costs = near_costs if near_costs is not None else nvme_costs()
        self.far_costs: OpCostSuite = (
            far.costs
            if far.costs is not None
            else (far_costs if far_costs is not None else OpCostSuite())
        )
        #: Near-tier contents in LRU order (first key = least recent).
        self._near: dict[str, bytes] = {}
        #: Dirty keys in write order (first key = oldest; the flush
        #: order). Only populated under write_back.
        self._dirty: dict[str, None] = {}
        self._engine: TransferEngine | None = None
        # -- counters ---------------------------------------------------
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_flushes = 0
        self.forced_flushes = 0
        self.flush_failures = 0
        self.bypass_writes = 0
        self.flushed_bytes = 0
        self.peak_dirty_bytes = 0
        self.near_wipes = 0
        #: Simulated seconds the background flusher spent on far PUTs
        #: (latency + backoff penalty + streaming time). Flushes are
        #: asynchronous — they do not occupy the shared link timeline.
        self.flush_time_s = 0.0
        self.last_flush_error: StorageError | None = None

    # -- capability / cost surface -------------------------------------

    @property
    def costs(self) -> OpCostSuite:  # type: ignore[override]
        """The store-level suite: what each op class costs *by policy*.

        PUT prices at the ack cost (near under write_back, far under
        write_through); GET/HEAD at near cost (the expectation the
        cache exists to create); LIST/DELETE at far cost (they are
        always served authoritatively by the far tier). Per-request
        hit/miss pricing refines this via :meth:`cost_model`.
        """
        ack_put = (
            self.near_costs.put
            if self.policy == POLICY_WRITE_BACK
            else self.far_costs.put
        )
        return OpCostSuite(
            put=ack_put,
            get=self.near_costs.get,
            list=self.far_costs.list,
            delete=self.far_costs.delete,
            head=self.near_costs.head,
        )

    @property
    def part_size_bytes(self) -> int | None:  # type: ignore[override]
        return None

    @property
    def fanout(self) -> int:  # type: ignore[override]
        return self.far.fanout

    @property
    def range_get_bytes(self) -> int | None:  # type: ignore[override]
        return self.far.range_get_bytes

    @property
    def rng(self):
        return getattr(self.far, "rng", None)

    def cost_model(self, op: str, key: str, nbytes: int = 0) -> OpCostModel:
        """Per-request pricing: where will this request's bytes live?

        The timed store consults this *before* issuing each data-plane
        request (:meth:`~repro.storage.object_store.ObjectStore\
        .cost_for`), so a GET is priced as a hit or a miss against the
        cache state the request will actually observe.
        """
        if op == OP_GET:
            return (
                self.near_costs.get
                if key in self._near
                else self.far_costs.get
            )
        if op == OP_PUT:
            if nbytes > self.capacity_bytes:
                return self.far_costs.put  # bypasses the near tier
            if self.policy == POLICY_WRITE_THROUGH:
                return self.far_costs.put
            return self.near_costs.put
        if op == OP_HEAD:
            return (
                self.near_costs.head
                if key in self._near
                else self.far_costs.head
            )
        if op == OP_DELETE:
            return self.far_costs.delete
        return self.far_costs.list

    def attach_engine(self, engine: "TransferEngine") -> None:
        """Give the cache the store's transfer engine, so asynchronous
        dirty flushes go through its retry/backoff loop (retries land
        in ``engine.retries_by_op`` like any other far request)."""
        self._engine = engine

    # -- cache state ----------------------------------------------------

    @property
    def near_bytes(self) -> int:
        return sum(len(d) for d in self._near.values())

    @property
    def near_objects(self) -> int:
        return len(self._near)

    @property
    def dirty_backlog(self) -> int:
        """Dirty objects written but not yet flushed to the far tier."""
        return len(self._dirty)

    @property
    def dirty_bytes(self) -> int:
        return sum(len(self._near[k]) for k in self._dirty)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def cached_keys(self) -> list[str]:
        """Near-resident keys, sorted (for tests/inspection)."""
        return sorted(self._near)

    def dirty_keys(self) -> list[str]:
        """Unflushed keys in flush (write) order."""
        return list(self._dirty)

    def stats(self) -> CacheTierStats:
        return CacheTierStats(
            capacity_bytes=self.capacity_bytes,
            policy=self.policy,
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            dirty_flushes=self.dirty_flushes,
            forced_flushes=self.forced_flushes,
            flush_failures=self.flush_failures,
            bypass_writes=self.bypass_writes,
            flushed_bytes=self.flushed_bytes,
            near_objects=self.near_objects,
            near_bytes=self.near_bytes,
            dirty_backlog=self.dirty_backlog,
            dirty_bytes=self.dirty_bytes,
            peak_dirty_bytes=self.peak_dirty_bytes,
            near_wipes=self.near_wipes,
        )

    # -- near-tier bookkeeping -----------------------------------------

    def _touch(self, key: str) -> None:
        self._near[key] = self._near.pop(key)

    def _insert_near(self, key: str, data: bytes, dirty: bool) -> None:
        self._near.pop(key, None)
        self._near[key] = data
        if dirty:
            self._dirty.pop(key, None)
            self._dirty[key] = None
            self.peak_dirty_bytes = max(
                self.peak_dirty_bytes, self.dirty_bytes
            )
        else:
            self._dirty.pop(key, None)

    def _drop_near(self, key: str) -> None:
        self._near.pop(key, None)
        self._dirty.pop(key, None)

    # -- flushing -------------------------------------------------------

    def _flush_one(self, key: str) -> None:
        """Write one dirty object to the far tier (one far PUT).

        Routed through the attached engine's retry/backoff loop when a
        store owns this cache; transient far failures are re-issued and
        their cost accrues to :attr:`flush_time_s` — the background
        flusher's clock, separate from the shared link timeline. A
        *permanent* failure (retries exhausted, a crash injected by a
        :class:`~repro.storage.backends.CrashingBackend` far tier)
        leaves the object dirty: the far tier holds the old bytes or
        none, never a torn object.
        """
        data = self._near[key]
        request = StorageRequest(OP_PUT, key, len(data))
        if self._engine is not None:
            cost = self.far_costs.put
            _, _, penalty, latency = self._engine.attempt_request(
                OP_PUT,
                lambda: self.far.put_object(request, data),
                cost=cost,
            )
            self.flush_time_s += (
                penalty + latency + cost.transfer_s(len(data))
            )
        else:
            self.far.put_object(request, data)
        self._dirty.pop(key, None)
        self.dirty_flushes += 1
        self.flushed_bytes += len(data)

    def flush(self, limit: int | None = None) -> int:
        """Flush dirty objects to the far tier, oldest first.

        Returns the number flushed. Failures count in
        :attr:`flush_failures` and re-raise — the object stays dirty
        for a later retry.
        """
        flushed = 0
        for key in list(self._dirty):
            if limit is not None and flushed >= limit:
                break
            try:
                self._flush_one(key)
            except StorageError as exc:
                self.flush_failures += 1
                self.last_flush_error = exc
                raise
            flushed += 1
        return flushed

    def _maybe_auto_flush(self) -> None:
        """The asynchronous flusher: drain oldest-dirty past watermark.

        Errors are swallowed (counted in :attr:`flush_failures`) — a
        background flush failure must not fail the foreground write it
        piggybacks on; the object stays dirty and a later flush (or
        eviction pressure) retries it.
        """
        watermark = self.capacity_bytes * self.flush_watermark
        while self._dirty and self.dirty_bytes > watermark:
            key = next(iter(self._dirty))
            try:
                self._flush_one(key)
            except StorageError as exc:
                self.flush_failures += 1
                self.last_flush_error = exc
                break

    def _evict_to_capacity(self, protect: str | None = None) -> None:
        """Evict until resident bytes fit: clean LRU first, then the
        oldest dirty object after a *forced* flush — dirty bytes are
        never dropped, so a forced-flush failure propagates (there is
        no safe way to make room)."""
        while self.near_bytes > self.capacity_bytes:
            victim = next(
                (
                    k
                    for k in self._near
                    if k not in self._dirty and k != protect
                ),
                None,
            )
            if victim is None:
                victim = next(
                    (k for k in self._dirty if k != protect), None
                )
                if victim is None:
                    break
                try:
                    self._flush_one(victim)
                except StorageError as exc:
                    self.flush_failures += 1
                    self.last_flush_error = exc
                    raise
                self.forced_flushes += 1
            del self._near[victim]
            self.evictions += 1

    def wipe_near(self) -> int:
        """Lose the near tier (simulated NVMe device loss).

        Every near-resident object disappears — including dirty ones
        that never reached the far tier. Returns the number of dirty
        objects lost; restore planning falls back to the newest fully
        flushed checkpoint (``plan_resume`` probes existence against
        what the composed store can still see).
        """
        lost_dirty = len(self._dirty)
        self._near.clear()
        self._dirty.clear()
        self.near_wipes += 1
        return lost_dirty

    # -- request-oriented data plane -----------------------------------

    def put_object(self, request: StorageRequest, data: bytes) -> None:
        data = bytes(data)
        key = request.key
        if len(data) > self.capacity_bytes:
            # Larger than the whole tier: bypass it. Far tier first so
            # a failed write leaves the old near copy intact; then the
            # (stale) near copy is dropped.
            self.far.put_object(request, data)
            self._drop_near(key)
            self.bypass_writes += 1
            return
        if self.policy == POLICY_WRITE_THROUGH:
            # Far tier first: a failed far write updates neither tier.
            self.far.put_object(request, data)
            self._insert_near(key, data, dirty=False)
        else:
            self._insert_near(key, data, dirty=True)
            self._maybe_auto_flush()
        self._evict_to_capacity(protect=key)

    def get_object(self, request: StorageRequest) -> bytes:
        key = request.key
        data = self._near.get(key)
        if data is not None:
            self.hits += 1
            self._touch(key)
            return clip_range(data, request.byte_range)
        data = self.far.get_object(request)
        self.misses += 1
        if request.byte_range is None and len(data) <= self.capacity_bytes:
            # Admit whole-object reads; ranged sub-GETs (a storm
            # spilling to the far tier) stream past the cache so every
            # part of one spilled read prices consistently at far cost.
            self._insert_near(key, data, dirty=False)
            self._evict_to_capacity(protect=key)
        return data

    def head_object(self, request: StorageRequest) -> bool:
        if request.key in self._near:
            return True
        return self.far.head_object(request)

    def delete_object(self, request: StorageRequest) -> None:
        key = request.key
        try:
            self.far.delete_object(request)
        except ObjectNotFoundError:
            if key not in self._near:
                raise
            # Dirty-only object: it never reached the far tier, so the
            # near removal below is the whole delete.
        self._drop_near(key)

    def list_objects(self, request: StorageRequest) -> list[str]:
        keys = set(self.far.list_objects(request))
        prefix = request.key
        keys.update(k for k in self._near if k.startswith(prefix))
        return sorted(keys)


def find_cache_tier(backend: Backend) -> CacheTierBackend | None:
    """Locate the cache tier inside a (possibly wrapped) backend.

    Fleet runs wrap the store's backend in a
    :class:`~repro.storage.backends.CrashingBackend` when bit-rot
    injection is on; reports walk the ``inner`` chain to reach the
    cache's counters wherever it sits.
    """
    node: Backend | None = backend
    while node is not None:
        if isinstance(node, CacheTierBackend):
            return node
        node = getattr(node, "inner", None)
    return None
