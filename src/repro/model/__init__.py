"""Numpy DLRM substrate: embeddings, MLPs, interaction, optimizers."""

from .dlrm import DLRM, StepResult
from .embedding import EmbeddingCollection, EmbeddingTable, SparseGrad
from .interaction import DotInteraction
from .loss import (
    auc,
    bce_grad,
    bce_with_logits,
    log_loss,
    normalized_entropy,
    sigmoid,
)
from .mlp import MLP, Linear, ReLU
from .optim import DenseAdagrad, DenseSGD, SparseRowWiseAdagrad, SparseSGD

__all__ = [
    "DLRM",
    "DenseAdagrad",
    "DenseSGD",
    "DotInteraction",
    "EmbeddingCollection",
    "EmbeddingTable",
    "Linear",
    "MLP",
    "ReLU",
    "SparseGrad",
    "SparseRowWiseAdagrad",
    "SparseSGD",
    "StepResult",
    "auc",
    "bce_grad",
    "bce_with_logits",
    "log_loss",
    "normalized_entropy",
    "sigmoid",
]
