"""Binary cross-entropy loss and CTR evaluation metrics.

Recommendation models are click-through-rate predictors; the standard
training loss is BCE over logits and the standard quality metrics are
log loss, normalised entropy (NE — log loss normalised by the entropy of
the base CTR, Facebook's canonical metric) and AUC. "Accuracy
degradation" in the paper's Fig 14 is the relative gap of such a metric
between a quantization-restored run and the unperturbed baseline.
"""

from __future__ import annotations

import numpy as np

from ..errors import TrainingError


def sigmoid(logits: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(logits, dtype=np.float64)
    pos = logits >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-logits[pos]))
    ex = np.exp(logits[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def bce_with_logits(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean binary cross-entropy, computed stably from logits."""
    if logits.shape != labels.shape:
        raise TrainingError(
            f"logits/labels shape mismatch: {logits.shape} vs {labels.shape}"
        )
    z = logits.astype(np.float64)
    y = labels.astype(np.float64)
    # max(z, 0) - z*y + log(1 + exp(-|z|)) is the stable BCE form.
    loss = np.maximum(z, 0.0) - z * y + np.log1p(np.exp(-np.abs(z)))
    return float(np.mean(loss))


def bce_grad(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """d(mean BCE)/d(logits) = (sigmoid(z) - y) / batch."""
    if logits.shape != labels.shape:
        raise TrainingError(
            f"logits/labels shape mismatch: {logits.shape} vs {labels.shape}"
        )
    batch = logits.shape[0]
    return ((sigmoid(logits) - labels.astype(np.float64)) / batch).astype(
        np.float32
    )


def log_loss(probabilities: np.ndarray, labels: np.ndarray) -> float:
    """Mean log loss from probabilities (clipped away from 0/1)."""
    p = np.clip(probabilities.astype(np.float64), 1e-12, 1.0 - 1e-12)
    y = labels.astype(np.float64)
    return float(-np.mean(y * np.log(p) + (1.0 - y) * np.log(1.0 - p)))


def normalized_entropy(
    probabilities: np.ndarray, labels: np.ndarray
) -> float:
    """Log loss normalised by the entropy of the empirical CTR.

    NE = 1.0 means the model is no better than predicting the base rate;
    lower is better. This is the metric production CTR systems monitor,
    so it is the one Fig 14's degradation curves are computed against.
    """
    ctr = float(np.mean(labels))
    if ctr <= 0.0 or ctr >= 1.0:
        raise TrainingError(
            f"degenerate label distribution (ctr={ctr}); NE undefined"
        )
    base = -(ctr * np.log(ctr) + (1.0 - ctr) * np.log(1.0 - ctr))
    return log_loss(probabilities, labels) / base


def auc(probabilities: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve via the rank-statistic formulation."""
    y = labels.astype(np.int64)
    positives = int(np.sum(y))
    negatives = y.size - positives
    if positives == 0 or negatives == 0:
        raise TrainingError("AUC undefined without both classes present")
    order = np.argsort(probabilities, kind="mergesort")
    ranks = np.empty(y.size, dtype=np.float64)
    # Average ranks for ties so the statistic is exact.
    sorted_p = probabilities[order]
    i = 0
    rank_position = 1
    while i < y.size:
        j = i
        while j + 1 < y.size and sorted_p[j + 1] == sorted_p[i]:
            j += 1
        avg = (rank_position + rank_position + (j - i)) / 2.0
        ranks[order[i : j + 1]] = avg
        rank_position += j - i + 1
        i = j + 1
    positive_rank_sum = float(np.sum(ranks[y == 1]))
    return (
        positive_rank_sum - positives * (positives + 1) / 2.0
    ) / (positives * negatives)
