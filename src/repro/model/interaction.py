"""Dot-product feature interaction (the "interaction op" in Fig 1).

DLRM combines the bottom-MLP output with every embedding lookup by
taking all pairwise dot products between the (T+1) feature vectors and
concatenating the lower-triangular results onto the dense vector. The
backward pass pushes gradients through both the concatenation and the
bilinear dot products.
"""

from __future__ import annotations

import numpy as np

from ..errors import TrainingError


class DotInteraction:
    """Pairwise-dot feature interaction with cached-stack backward."""

    def __init__(self) -> None:
        self._stacked: np.ndarray | None = None
        self._tri_rows: np.ndarray | None = None
        self._tri_cols: np.ndarray | None = None

    def output_width(self, num_tables: int, dim: int) -> int:
        """Width of the interaction output: dense dim + C(T+1, 2)."""
        features = num_tables + 1
        return dim + features * (features - 1) // 2

    def forward(
        self, dense: np.ndarray, embeddings: list[np.ndarray]
    ) -> np.ndarray:
        """Concat(dense, lower-triangular pairwise dots).

        Args:
            dense: (batch, dim) bottom-MLP output.
            embeddings: T arrays of (batch, dim) pooled lookups.
        """
        if not embeddings:
            raise TrainingError("interaction requires at least one table")
        for i, emb in enumerate(embeddings):
            if emb.shape != dense.shape:
                raise TrainingError(
                    f"embedding {i} shape {emb.shape} != dense shape "
                    f"{dense.shape}"
                )
        stacked = np.stack([dense] + list(embeddings), axis=1)
        features = stacked.shape[1]
        rows, cols = np.tril_indices(features, k=-1)
        gram = np.einsum("bif,bjf->bij", stacked, stacked)
        interactions = gram[:, rows, cols]
        self._stacked = stacked
        self._tri_rows = rows
        self._tri_cols = cols
        return np.concatenate([dense, interactions], axis=1).astype(
            np.float32
        )

    def backward(
        self, grad_out: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Returns (grad_dense, [grad_embedding_t ...])."""
        if self._stacked is None:
            raise TrainingError("backward called before forward")
        stacked = self._stacked
        rows, cols = self._tri_rows, self._tri_cols
        batch, features, dim = stacked.shape

        grad_dense_direct = grad_out[:, :dim]
        grad_pairs = grad_out[:, dim:]

        # Scatter pair gradients into a symmetric (features, features)
        # gram-gradient, then contract against the stacked features:
        # d/dZ (Z Z^T) applied to G is (G + G^T) Z.
        gram_grad = np.zeros((batch, features, features), dtype=np.float32)
        gram_grad[:, rows, cols] = grad_pairs
        sym = gram_grad + gram_grad.transpose(0, 2, 1)
        grad_stacked = np.einsum("bij,bjf->bif", sym, stacked)

        grad_dense = grad_stacked[:, 0, :] + grad_dense_direct
        grad_embeddings = [
            grad_stacked[:, t, :].astype(np.float32)
            for t in range(1, features)
        ]
        self._stacked = None
        self._tri_rows = None
        self._tri_cols = None
        return grad_dense.astype(np.float32), grad_embeddings
