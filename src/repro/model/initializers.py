"""Parameter initialisation for the numpy DLRM.

Matches the conventions of the open-source DLRM reference: MLP weights
use Xavier/Glorot uniform scaling, embedding tables use a uniform
distribution whose width shrinks with the table's row count (so that a
pooled-sum of lookups starts at unit-ish scale).
"""

from __future__ import annotations

import numpy as np


def xavier_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot-uniform weight matrix of shape (fan_in, fan_out)."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out)).astype(
        np.float32
    )


def embedding_uniform(
    rows: int, dim: int, rng: np.random.Generator
) -> np.ndarray:
    """DLRM-style embedding init: U(-1/sqrt(rows), 1/sqrt(rows))."""
    limit = 1.0 / np.sqrt(rows)
    return rng.uniform(-limit, limit, size=(rows, dim)).astype(np.float32)


def zeros(*shape: int) -> np.ndarray:
    """fp32 zeros — bias initialisation."""
    return np.zeros(shape, dtype=np.float32)
