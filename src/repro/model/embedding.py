"""Embedding tables with multi-hot bag lookups and sparse gradients.

Embedding tables are the sparse, model-parallel part of DLRM and account
for >99% of the model's footprint (paper section 2.1). Each training
sample carries ``hotness`` indices per table; the lookup sum-pools the
indexed rows. The backward pass produces *sparse* gradients — only the
rows actually looked up receive updates — which is the property that
makes incremental checkpointing effective.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TrainingError
from .initializers import embedding_uniform


@dataclass
class SparseGrad:
    """Gradient restricted to the touched rows of one embedding table.

    ``rows`` holds unique, sorted row indices; ``values[i]`` is the
    aggregated gradient for ``rows[i]``.
    """

    rows: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.rows.ndim != 1 or self.values.ndim != 2:
            raise TrainingError("SparseGrad expects 1-D rows, 2-D values")
        if self.rows.shape[0] != self.values.shape[0]:
            raise TrainingError(
                f"rows/values length mismatch: {self.rows.shape[0]} vs "
                f"{self.values.shape[0]}"
            )


class EmbeddingTable:
    """One embedding table: (rows, dim) fp32 with sum-pooled bag lookups."""

    def __init__(
        self,
        rows: int,
        dim: int,
        rng: np.random.Generator,
        table_id: int = 0,
    ) -> None:
        if rows < 1 or dim < 1:
            raise TrainingError("embedding table dimensions must be positive")
        self.table_id = table_id
        self.rows = rows
        self.dim = dim
        self.weight = embedding_uniform(rows, dim, rng)
        self._last_indices: np.ndarray | None = None

    def forward(self, indices: np.ndarray) -> np.ndarray:
        """Sum-pool lookup: (batch, hotness) indices -> (batch, dim).

        Out-of-range indices are rejected rather than clipped — a wrong
        index is a data bug, and clipping would silently skew training.
        """
        if indices.ndim != 2:
            raise TrainingError(
                f"expected (batch, hotness) indices, got shape "
                f"{indices.shape}"
            )
        if indices.size and (
            indices.min() < 0 or indices.max() >= self.rows
        ):
            raise TrainingError(
                f"table {self.table_id}: index out of range "
                f"[{indices.min()}, {indices.max()}] for {self.rows} rows"
            )
        self._last_indices = indices
        return self.weight[indices].sum(axis=1)

    def backward(self, grad_out: np.ndarray) -> SparseGrad:
        """Aggregate per-row gradients for the last forward's indices.

        Every index in a sample's bag receives that sample's full output
        gradient (sum-pooling has unit partials). Duplicate lookups of
        the same row accumulate.
        """
        if self._last_indices is None:
            raise TrainingError("backward called before forward")
        indices = self._last_indices
        batch, hotness = indices.shape
        flat_rows = indices.reshape(-1)
        flat_grads = np.repeat(grad_out, hotness, axis=0)
        unique_rows, inverse = np.unique(flat_rows, return_inverse=True)
        values = np.zeros(
            (unique_rows.shape[0], self.dim), dtype=np.float32
        )
        np.add.at(values, inverse, flat_grads)
        self._last_indices = None
        return SparseGrad(rows=unique_rows, values=values)

    def last_touched_rows(self) -> np.ndarray:
        """Unique rows referenced by the in-flight forward pass.

        This is the *forward-pass proxy* the paper's tracker uses
        (section 5.1.1): cheap to compute during the AlltoAll phase and a
        superset of the rows the backward pass will modify.
        """
        if self._last_indices is None:
            raise TrainingError("no forward pass in flight")
        return np.unique(self._last_indices)

    @property
    def nbytes(self) -> int:
        """fp32 weight bytes (excludes optimizer state)."""
        return int(self.weight.nbytes)


class EmbeddingCollection:
    """All of a model's embedding tables, indexed by table id."""

    def __init__(
        self,
        rows_per_table: tuple[int, ...],
        dim: int,
        rng: np.random.Generator,
    ) -> None:
        self.tables = [
            EmbeddingTable(rows, dim, rng, table_id=i)
            for i, rows in enumerate(rows_per_table)
        ]
        self.dim = dim

    def __len__(self) -> int:
        return len(self.tables)

    def __getitem__(self, table_id: int) -> EmbeddingTable:
        return self.tables[table_id]

    def forward(self, indices_per_table: list[np.ndarray]) -> list[np.ndarray]:
        """Lookups for every table; returns one (batch, dim) per table."""
        if len(indices_per_table) != len(self.tables):
            raise TrainingError(
                f"got indices for {len(indices_per_table)} tables, "
                f"model has {len(self.tables)}"
            )
        return [
            table.forward(indices)
            for table, indices in zip(self.tables, indices_per_table)
        ]

    def backward(self, grads_per_table: list[np.ndarray]) -> list[SparseGrad]:
        """Sparse gradients for every table (same order as forward)."""
        return [
            table.backward(grad)
            for table, grad in zip(self.tables, grads_per_table)
        ]

    @property
    def total_rows(self) -> int:
        return sum(t.rows for t in self.tables)

    @property
    def nbytes(self) -> int:
        return sum(t.nbytes for t in self.tables)
