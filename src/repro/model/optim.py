"""Optimizers: dense (MLP) and sparse row-wise (embedding tables).

Production DLRM trains embeddings with *row-wise Adagrad*: one scalar
accumulator per embedding row, updated with the mean squared gradient of
that row. The accumulator is part of the trainer state and therefore
part of every checkpoint (paper section 4.1: "the trainer state consists
of all the model layers ..., the optimizer state, and the relevant
metrics").
"""

from __future__ import annotations

import numpy as np

from ..errors import TrainingError
from .embedding import EmbeddingTable, SparseGrad


class DenseSGD:
    """Plain SGD for dense (MLP) parameters."""

    name = "sgd"

    def __init__(self, learning_rate: float = 0.05) -> None:
        if learning_rate <= 0:
            raise TrainingError("learning rate must be positive")
        self.learning_rate = learning_rate

    def step(
        self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]
    ) -> None:
        for name, param in params.items():
            param -= self.learning_rate * grads[name]

    def state_dict(self) -> dict[str, np.ndarray]:
        """SGD is stateless; nothing to checkpoint."""
        return {}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        if state:
            raise TrainingError("DenseSGD has no state to load")


class DenseAdagrad:
    """Adagrad for dense parameters (per-element accumulators)."""

    name = "adagrad"

    def __init__(self, learning_rate: float = 0.05, eps: float = 1e-8):
        if learning_rate <= 0:
            raise TrainingError("learning rate must be positive")
        self.learning_rate = learning_rate
        self.eps = eps
        self._accum: dict[str, np.ndarray] = {}

    def step(
        self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]
    ) -> None:
        for name, param in params.items():
            grad = grads[name]
            if name not in self._accum:
                self._accum[name] = np.zeros_like(param)
            accum = self._accum[name]
            accum += grad * grad
            param -= self.learning_rate * grad / (np.sqrt(accum) + self.eps)

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: arr.copy() for name, arr in self._accum.items()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self._accum = {name: arr.copy() for name, arr in state.items()}


class SparseRowWiseAdagrad:
    """Row-wise Adagrad for one embedding table.

    State is a single fp32 accumulator per row. On each step, touched
    rows add the mean squared gradient of their row; the row update is
    scaled by ``lr / (sqrt(accum) + eps)``.
    """

    name = "rowwise_adagrad"

    def __init__(
        self,
        table: EmbeddingTable,
        learning_rate: float = 0.05,
        eps: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise TrainingError("learning rate must be positive")
        self.table = table
        self.learning_rate = learning_rate
        self.eps = eps
        self.accumulator = np.zeros(table.rows, dtype=np.float32)

    def step(self, grad: SparseGrad) -> np.ndarray:
        """Apply a sparse update; returns the rows actually modified."""
        if grad.rows.size == 0:
            return grad.rows
        mean_sq = np.mean(
            grad.values.astype(np.float64) ** 2, axis=1
        ).astype(np.float32)
        self.accumulator[grad.rows] += mean_sq
        denom = np.sqrt(self.accumulator[grad.rows]) + self.eps
        update = self.learning_rate * grad.values / denom[:, None]
        self.table.weight[grad.rows] -= update
        return grad.rows

    def state_dict(self) -> dict[str, np.ndarray]:
        return {"accumulator": self.accumulator.copy()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        accumulator = state["accumulator"]
        if accumulator.shape != self.accumulator.shape:
            raise TrainingError(
                f"accumulator shape mismatch: {accumulator.shape} vs "
                f"{self.accumulator.shape}"
            )
        np.copyto(self.accumulator, accumulator)


class SparseSGD:
    """Stateless sparse SGD — the simpler embedding optimizer option."""

    name = "sparse_sgd"

    def __init__(
        self, table: EmbeddingTable, learning_rate: float = 0.05
    ) -> None:
        if learning_rate <= 0:
            raise TrainingError("learning rate must be positive")
        self.table = table
        self.learning_rate = learning_rate

    def step(self, grad: SparseGrad) -> np.ndarray:
        if grad.rows.size == 0:
            return grad.rows
        self.table.weight[grad.rows] -= self.learning_rate * grad.values
        return grad.rows

    def state_dict(self) -> dict[str, np.ndarray]:
        return {}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        if state:
            raise TrainingError("SparseSGD has no state to load")
