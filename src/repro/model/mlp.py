"""Dense layers with hand-written gradients.

The MLPs are the data-parallel part of DLRM (paper section 2.1). This is
a minimal, explicit autograd: each layer caches what its backward pass
needs, ``backward`` returns the gradient w.r.t. its input, and parameter
gradients accumulate on the layer until the optimizer consumes them.
"""

from __future__ import annotations

import numpy as np

from ..errors import TrainingError
from .initializers import xavier_uniform, zeros


class Linear:
    """Affine layer ``y = x @ W + b`` with cached-input backward."""

    def __init__(
        self, in_features: int, out_features: int, rng: np.random.Generator
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise TrainingError("layer dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = xavier_uniform(in_features, out_features, rng)
        self.bias = zeros(out_features)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise TrainingError(
                f"Linear({self.in_features}->{self.out_features}) got "
                f"input of shape {x.shape}"
            )
        self._input = x
        return x @ self.weight + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise TrainingError("backward called before forward")
        self.grad_weight += self._input.T @ grad_out
        self.grad_bias += grad_out.sum(axis=0)
        grad_in = grad_out @ self.weight.T
        self._input = None
        return grad_in

    def zero_grad(self) -> None:
        self.grad_weight.fill(0.0)
        self.grad_bias.fill(0.0)


class ReLU:
    """Elementwise max(0, x); caches the activation mask."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0).astype(np.float32)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise TrainingError("backward called before forward")
        grad_in = np.where(self._mask, grad_out, 0.0).astype(np.float32)
        self._mask = None
        return grad_in


class MLP:
    """A stack of Linear+ReLU layers; the final Linear has no activation.

    ``layer_sizes`` includes the input width, e.g. ``(13, 32, 16)`` is
    13 -> 32 (ReLU) -> 16 (linear output).
    """

    def __init__(
        self, layer_sizes: tuple[int, ...], rng: np.random.Generator
    ) -> None:
        if len(layer_sizes) < 2:
            raise TrainingError("MLP needs at least input and output sizes")
        self.layer_sizes = tuple(layer_sizes)
        self.linears: list[Linear] = []
        self.activations: list[ReLU] = []
        for i in range(len(layer_sizes) - 1):
            self.linears.append(
                Linear(layer_sizes[i], layer_sizes[i + 1], rng)
            )
            if i < len(layer_sizes) - 2:
                self.activations.append(ReLU())

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for i, linear in enumerate(self.linears):
            out = linear.forward(out)
            if i < len(self.activations):
                out = self.activations[i].forward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        for i in range(len(self.linears) - 1, -1, -1):
            if i < len(self.activations):
                grad = self.activations[i].backward(grad)
            grad = self.linears[i].backward(grad)
        return grad

    def zero_grad(self) -> None:
        for linear in self.linears:
            linear.zero_grad()

    def parameters(self, prefix: str) -> dict[str, np.ndarray]:
        """Named parameter views (shared memory, not copies)."""
        params: dict[str, np.ndarray] = {}
        for i, linear in enumerate(self.linears):
            params[f"{prefix}.{i}.weight"] = linear.weight
            params[f"{prefix}.{i}.bias"] = linear.bias
        return params

    def gradients(self, prefix: str) -> dict[str, np.ndarray]:
        """Named gradient views, aligned with :meth:`parameters`."""
        grads: dict[str, np.ndarray] = {}
        for i, linear in enumerate(self.linears):
            grads[f"{prefix}.{i}.weight"] = linear.grad_weight
            grads[f"{prefix}.{i}.bias"] = linear.grad_bias
        return grads

    def load_parameters(
        self, prefix: str, params: dict[str, np.ndarray]
    ) -> None:
        """Copy values from a state dict into the layer arrays."""
        for i, linear in enumerate(self.linears):
            weight = params[f"{prefix}.{i}.weight"]
            bias = params[f"{prefix}.{i}.bias"]
            if weight.shape != linear.weight.shape:
                raise TrainingError(
                    f"shape mismatch loading {prefix}.{i}.weight: "
                    f"{weight.shape} vs {linear.weight.shape}"
                )
            np.copyto(linear.weight, weight)
            np.copyto(linear.bias, bias)
