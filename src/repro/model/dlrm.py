"""The complete DLRM model (paper Fig 1) with training step and state.

Wiring: dense features -> bottom MLP; sparse features -> embedding bag
lookups; dot interaction combines them; top MLP produces the CTR logit.
Training uses BCE loss, dense Adagrad for the MLPs and row-wise Adagrad
for the embedding tables.

The model exposes exactly the state surface Check-N-Run checkpoints:
``dense_state()`` (MLPs + dense optimizer, replicated across devices so
one copy suffices) and per-table embedding weights + accumulators (model
parallel, checkpointed shard by shard).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ModelConfig
from ..data.batch import Batch
from ..errors import TrainingError
from .embedding import EmbeddingCollection
from .interaction import DotInteraction
from .loss import bce_grad, bce_with_logits, sigmoid
from .mlp import MLP
from .optim import DenseAdagrad, SparseRowWiseAdagrad


@dataclass
class StepResult:
    """Outcome of one synchronous training step."""

    loss: float
    touched_rows: dict[int, np.ndarray]  # table id -> unique modified rows
    batch_index: int


class DLRM:
    """Deep Learning Recommendation Model on numpy.

    Construction is deterministic given ``config.seed``; two models built
    from the same config are bit-identical, which the restore tests rely
    on.
    """

    def __init__(
        self, config: ModelConfig, learning_rate: float = 0.05
    ) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.bottom_mlp = MLP(
            (config.num_dense_features,) + config.bottom_mlp, rng
        )
        self.embeddings = EmbeddingCollection(
            config.rows_per_table, config.embedding_dim, rng
        )
        self.interaction = DotInteraction()
        interaction_width = self.interaction.output_width(
            config.num_tables, config.embedding_dim
        )
        self.top_mlp = MLP((interaction_width,) + config.top_mlp, rng)
        self.dense_optimizer = DenseAdagrad(learning_rate)
        self.sparse_optimizers = [
            SparseRowWiseAdagrad(table, learning_rate)
            for table in self.embeddings.tables
        ]
        self.samples_trained = 0
        self.batches_trained = 0

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------

    def forward(self, batch: Batch) -> np.ndarray:
        """Compute CTR logits, shape (batch_size,)."""
        dense_out = self.bottom_mlp.forward(batch.dense)
        emb_out = self.embeddings.forward(batch.sparse)
        combined = self.interaction.forward(dense_out, emb_out)
        return self.top_mlp.forward(combined).reshape(-1)

    def predict_proba(self, batch: Batch) -> np.ndarray:
        """Click probabilities (inference path; no caching side effects)."""
        logits = self.forward(batch)
        self._clear_caches()
        return sigmoid(logits)

    def train_step(self, batch: Batch) -> StepResult:
        """One synchronous forward/backward/update step."""
        logits = self.forward(batch)
        loss = bce_with_logits(logits, batch.labels)
        grad_logits = bce_grad(logits, batch.labels).reshape(-1, 1)

        grad_combined = self.top_mlp.backward(grad_logits)
        grad_dense, grad_embs = self.interaction.backward(grad_combined)
        self.bottom_mlp.backward(grad_dense)
        sparse_grads = self.embeddings.backward(grad_embs)

        dense_params = self.dense_parameters()
        dense_grads = self.dense_gradients()
        self.dense_optimizer.step(dense_params, dense_grads)
        self.bottom_mlp.zero_grad()
        self.top_mlp.zero_grad()

        touched: dict[int, np.ndarray] = {}
        for table_id, (optimizer, grad) in enumerate(
            zip(self.sparse_optimizers, sparse_grads)
        ):
            touched[table_id] = optimizer.step(grad)

        self.samples_trained += batch.num_samples
        self.batches_trained += 1
        return StepResult(
            loss=loss, touched_rows=touched, batch_index=batch.batch_index
        )

    def lookup_rows(self, batch: Batch) -> dict[int, np.ndarray]:
        """Forward-proxy tracking: unique rows each table would look up.

        Side-effect free — used by the tracker without running a step.
        """
        return {
            table_id: np.unique(indices)
            for table_id, indices in enumerate(batch.sparse)
        }

    def _clear_caches(self) -> None:
        for table in self.embeddings.tables:
            table._last_indices = None

    # ------------------------------------------------------------------
    # State surface for checkpointing
    # ------------------------------------------------------------------

    def dense_parameters(self) -> dict[str, np.ndarray]:
        params = self.bottom_mlp.parameters("bottom")
        params.update(self.top_mlp.parameters("top"))
        return params

    def dense_gradients(self) -> dict[str, np.ndarray]:
        grads = self.bottom_mlp.gradients("bottom")
        grads.update(self.top_mlp.gradients("top"))
        return grads

    def dense_state(self) -> dict[str, np.ndarray]:
        """Everything replicated across devices: MLPs + dense optimizer."""
        state = {
            name: arr.copy() for name, arr in self.dense_parameters().items()
        }
        for name, arr in self.dense_optimizer.state_dict().items():
            state[f"optim.{name}"] = arr
        return state

    def load_dense_state(self, state: dict[str, np.ndarray]) -> None:
        params = {k: v for k, v in state.items() if not k.startswith("optim.")}
        self.bottom_mlp.load_parameters("bottom", params)
        self.top_mlp.load_parameters("top", params)
        optim_state = {
            k[len("optim.") :]: v
            for k, v in state.items()
            if k.startswith("optim.")
        }
        self.dense_optimizer.load_state_dict(optim_state)

    def table_weight(self, table_id: int) -> np.ndarray:
        """The live (mutable) weight array for one table."""
        return self.embeddings[table_id].weight

    def table_accumulator(self, table_id: int) -> np.ndarray:
        """The live row-wise Adagrad accumulator for one table."""
        return self.sparse_optimizers[table_id].accumulator

    def load_table_rows(
        self,
        table_id: int,
        rows: np.ndarray,
        weights: np.ndarray,
        accumulator: np.ndarray | None = None,
    ) -> None:
        """Overwrite specific rows of a table (restore path)."""
        table = self.embeddings[table_id]
        if weights.shape != (rows.shape[0], table.dim):
            raise TrainingError(
                f"restore shape mismatch for table {table_id}: "
                f"{weights.shape} vs ({rows.shape[0]}, {table.dim})"
            )
        table.weight[rows] = weights
        if accumulator is not None:
            self.sparse_optimizers[table_id].accumulator[rows] = accumulator

    @property
    def num_tables(self) -> int:
        return len(self.embeddings)

    @property
    def embedding_nbytes(self) -> int:
        return self.embeddings.nbytes

    @property
    def total_nbytes(self) -> int:
        """Embeddings + accumulators + dense parameters, in fp32 bytes."""
        dense = sum(a.nbytes for a in self.dense_parameters().values())
        accum = sum(
            opt.accumulator.nbytes for opt in self.sparse_optimizers
        )
        return self.embedding_nbytes + accum + dense

    def clone_config_model(self) -> "DLRM":
        """A fresh model with identical config (and therefore init)."""
        return DLRM(self.config, self.dense_optimizer.learning_rate)

    def reinitialize(self) -> None:
        """Reset all state in place to the deterministic initial values.

        Models a from-scratch job restart when no checkpoint survived:
        the same arrays are overwritten so views held by trainers and
        snapshots stay valid.
        """
        fresh = self.clone_config_model()
        for name, arr in fresh.dense_parameters().items():
            np.copyto(self.dense_parameters()[name], arr)
        self.dense_optimizer.load_state_dict(
            fresh.dense_optimizer.state_dict()
        )
        for table_id in range(self.num_tables):
            np.copyto(
                self.table_weight(table_id), fresh.table_weight(table_id)
            )
            self.sparse_optimizers[table_id].accumulator.fill(0.0)
        self.samples_trained = 0
        self.batches_trained = 0
