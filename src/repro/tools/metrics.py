"""Prometheus-textfile metrics for scans and fleet runs.

A minimal renderer for the `Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ —
just gauges/counters with optional labels, which is all the node
exporter's *textfile collector* ingests. No client library dependency:
the format is a few lines of string assembly, and keeping it in-repo
means ``repro scan --metrics-out`` and ``repro fleet --metrics-out``
work in any environment the simulator runs in.

Two builders mirror the operator surfaces that emit metrics:

* :func:`scan_metrics` — one ``repro scan`` pass
  (:class:`~repro.core.integrity.IntegrityReport`): objects/bytes
  scanned, corrupt/quarantined/torn counts by job;
* :func:`fleet_metrics` — one fleet run
  (:class:`~repro.fleet.experiment.FleetRunReport`): bit-rot
  injections, restore fallbacks, scratch restarts, restores/failures;
* :func:`serving_metrics` — one serving-plane co-simulation
  (:class:`~repro.serving.fleet.ServingReport`): lookup latency
  percentiles, row-cache hit rate, version flips/lag/stalls, torn
  lookups;
* :func:`plan_metrics` — one capacity-planner sweep
  (:class:`~repro.fleet.planner.ProvisioningCurve`): peak storage,
  peak link bandwidth and storm time-to-recover per grid point,
  labelled by the (quota, retention, admission) knobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

#: Metric name prefix for everything this repo exports.
PREFIX = "repro"


@dataclass(frozen=True)
class Metric:
    """One sample of the text exposition format."""

    name: str
    value: float
    help: str = ""
    type: str = "gauge"  # "gauge" or "counter"
    labels: tuple[tuple[str, str], ...] = ()

    def sample_line(self) -> str:
        if self.labels:
            body = ",".join(
                f'{k}="{_escape_label(v)}"' for k, v in self.labels
            )
            series = f"{self.name}{{{body}}}"
        else:
            series = self.name
        value = (
            str(int(self.value))
            if float(self.value).is_integer()
            else repr(float(self.value))
        )
        return f"{series} {value}"


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def render_textfile(metrics: list[Metric]) -> str:
    """Render metrics in exposition format, HELP/TYPE once per name.

    Samples keep their given order within a metric name; names appear
    in first-seen order, so output is deterministic for a fixed input.
    """
    by_name: dict[str, list[Metric]] = {}
    for metric in metrics:
        by_name.setdefault(metric.name, []).append(metric)
    lines: list[str] = []
    for name, group in by_name.items():
        head = group[0]
        if head.help:
            lines.append(f"# HELP {name} {head.help}")
        lines.append(f"# TYPE {name} {head.type}")
        lines.extend(m.sample_line() for m in group)
    return "\n".join(lines) + "\n"


def write_textfile(path: str | Path, metrics: list[Metric]) -> Path:
    """Write a ``.prom`` textfile; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_textfile(metrics), encoding="utf-8")
    return target


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------


def scan_metrics(report) -> list[Metric]:
    """Metrics for one integrity scan (``repro scan``).

    ``report`` is a :class:`~repro.core.integrity.IntegrityReport`;
    every series carries a ``job`` label so scans over several jobs
    concatenate into one textfile.
    """
    job = (("job", report.job_id),)
    return [
        Metric(
            f"{PREFIX}_scan_checkpoints_scanned",
            report.checkpoints_scanned,
            help="Checkpoints with a readable manifest scanned.",
            labels=job,
        ),
        Metric(
            f"{PREFIX}_scan_objects_scanned",
            report.objects_scanned,
            help="Stored objects (manifests, chunks, dense) scanned.",
            labels=job,
        ),
        Metric(
            f"{PREFIX}_scan_bytes_verified",
            report.bytes_verified,
            help="Bytes of objects that passed every integrity check.",
            labels=job,
        ),
        Metric(
            f"{PREFIX}_scan_corrupt_objects",
            len(report.issues),
            help="Objects that failed an integrity check this scan.",
            labels=job,
        ),
        Metric(
            f"{PREFIX}_scan_corrupt_checkpoints",
            len(report.corrupt_checkpoint_ids),
            help="Checkpoints with at least one corrupt object.",
            labels=job,
        ),
        Metric(
            f"{PREFIX}_scan_quarantined_checkpoints",
            len(report.quarantined_ids),
            help="Checkpoints newly quarantined by this scan.",
            labels=job,
        ),
        Metric(
            f"{PREFIX}_scan_already_quarantined_checkpoints",
            len(report.already_quarantined_ids),
            help="Checkpoints a previous scan had already quarantined.",
            labels=job,
        ),
        Metric(
            f"{PREFIX}_scan_torn_checkpoints",
            len(report.torn_checkpoint_ids),
            help="Checkpoints with stored objects but no manifest.",
            labels=job,
        ),
        Metric(
            f"{PREFIX}_scan_unreadable_manifests",
            len(report.unreadable_manifests),
            help="Manifest objects that failed to parse.",
            labels=job,
        ),
    ]


def fleet_metrics(report) -> list[Metric]:
    """Metrics for one fleet run (``repro fleet``).

    ``report`` is a :class:`~repro.fleet.experiment.FleetRunReport`.
    """
    return [
        Metric(
            f"{PREFIX}_fleet_jobs",
            report.num_jobs,
            help="Jobs sharing the store in this run.",
        ),
        Metric(
            f"{PREFIX}_fleet_failures",
            report.failures,
            help="Independent failures injected across the fleet.",
        ),
        Metric(
            f"{PREFIX}_fleet_restores",
            report.restores,
            help="Restores completed across the fleet.",
        ),
        Metric(
            f"{PREFIX}_fleet_torn_writes",
            report.torn_writes,
            help="Checkpoint writes torn by crashes.",
        ),
        Metric(
            f"{PREFIX}_fleet_bitrot_injected_writes",
            report.bitrot_injected,
            help="PUT payloads silently corrupted by the bit-rot "
            "injector.",
        ),
        Metric(
            f"{PREFIX}_fleet_restore_fallbacks",
            report.restore_fallbacks,
            help="Resume-plan candidates that failed verification "
            "before a restore landed (restore-through-corruption).",
        ),
        Metric(
            f"{PREFIX}_fleet_scratch_restarts",
            report.scratch_restarts,
            help="Recoveries with no restorable checkpoint at all.",
        ),
        Metric(
            f"{PREFIX}_fleet_verified_read_bytes",
            report.total_get_bytes,
            help="GET-class bytes read (and digest/CRC-verified) over "
            "the shared link.",
        ),
        Metric(
            f"{PREFIX}_fleet_cache_capacity_bytes",
            report.cache_capacity_bytes,
            help="Near-tier cache capacity (0 = no cache tier).",
        ),
        Metric(
            f"{PREFIX}_fleet_cache_hits",
            report.cache_hits,
            help="GET requests served from the near cache tier.",
        ),
        Metric(
            f"{PREFIX}_fleet_cache_misses",
            report.cache_misses,
            help="GET requests that spilled to the far tier.",
        ),
        Metric(
            f"{PREFIX}_fleet_cache_evictions",
            report.cache_evictions,
            help="Objects evicted from the near tier under capacity "
            "pressure.",
        ),
        Metric(
            f"{PREFIX}_fleet_cache_dirty_flushes",
            report.cache_dirty_flushes,
            help="Dirty objects flushed asynchronously to the far tier "
            "(write-back policy).",
        ),
        Metric(
            f"{PREFIX}_fleet_cache_dirty_backlog",
            report.cache_dirty_backlog,
            help="Dirty objects still unflushed at end of run.",
        ),
        Metric(
            f"{PREFIX}_fleet_repl_k",
            report.replicate_k,
            help="Peer replicas per job (0 = replication off).",
        ),
        Metric(
            f"{PREFIX}_fleet_repl_peer_restores",
            report.repl_peer_restores,
            help="Recoveries served from a peer memory ring instead "
            "of the object store.",
        ),
        Metric(
            f"{PREFIX}_fleet_repl_store_fallbacks",
            report.repl_store_fallbacks,
            help="Recoveries that fell through to the object store "
            "because no replica survived the failure domain.",
        ),
        Metric(
            f"{PREFIX}_fleet_repl_deltas_sent",
            report.repl_deltas_sent,
            help="Per-step deltas mirrored into peer rings.",
        ),
        Metric(
            f"{PREFIX}_fleet_repl_bytes_sent",
            report.repl_bytes_sent,
            help="Bytes mirrored over the replication stream class.",
        ),
        Metric(
            f"{PREFIX}_fleet_repl_partial_discards",
            report.repl_partial_discards,
            help="Replica sends torn by a crash mid-transfer and "
            "discarded (never readable as a restore source).",
        ),
        Metric(
            f"{PREFIX}_fleet_repl_rings_lost",
            report.repl_rings_lost,
            help="Peer rings destroyed because their host job died.",
        ),
        Metric(
            f"{PREFIX}_fleet_repl_rings_rebuilt",
            report.repl_rings_rebuilt,
            help="Rings rebuilt by anchor resend after a baseline "
            "flush.",
        ),
        Metric(
            f"{PREFIX}_fleet_repl_ring_evictions",
            report.repl_ring_evictions,
            help="Oldest deltas folded into ring anchors under "
            "capacity pressure.",
        ),
    ]


def plan_metrics(curve) -> list[Metric]:
    """Metrics for one capacity-planner sweep (``repro plan``).

    ``curve`` is a :class:`~repro.fleet.planner.ProvisioningCurve`.
    Every series carries the grid point's knobs as labels, so one
    textfile holds the whole curve and dashboards can plot peak
    storage against retention depth directly.
    """
    metrics = [
        Metric(
            f"{PREFIX}_plan_points",
            len(curve.points),
            help="Grid points in this provisioning sweep.",
        ),
        Metric(
            f"{PREFIX}_plan_jobs",
            curve.num_jobs,
            help="Jobs in each swept fleet.",
        ),
    ]
    for point in curve.points:
        labels = (
            (
                "quota",
                "none"
                if point.quota_bytes is None
                else str(point.quota_bytes),
            ),
            ("keep_last", str(point.keep_last)),
            ("admission", point.admission),
        )
        metrics.extend(
            [
                Metric(
                    f"{PREFIX}_plan_peak_physical_bytes",
                    point.peak_physical_bytes,
                    help="Fleet peak live physical bytes at this "
                    "grid point.",
                    labels=labels,
                ),
                Metric(
                    f"{PREFIX}_plan_peak_put_bandwidth",
                    point.peak_put_bandwidth,
                    help="Peak windowed PUT bandwidth (bytes/sec).",
                    labels=labels,
                ),
                Metric(
                    f"{PREFIX}_plan_peak_get_bandwidth",
                    point.peak_get_bandwidth,
                    help="Peak windowed GET bandwidth (bytes/sec).",
                    labels=labels,
                ),
                Metric(
                    f"{PREFIX}_plan_storm_recover_seconds",
                    point.storm_recover_s,
                    help="Fleet storm time-to-recover (0 = no storm).",
                    labels=labels,
                ),
                Metric(
                    f"{PREFIX}_plan_quota_rejections",
                    point.quota_rejections,
                    help="Quota-rejected PUTs at this grid point.",
                    labels=labels,
                ),
                Metric(
                    f"{PREFIX}_plan_admission_deferrals",
                    point.admission_deferrals,
                    help="Admission-deferred checkpoint triggers.",
                    labels=labels,
                ),
            ]
        )
    return metrics


def serving_metrics(report) -> list[Metric]:
    """Metrics for one serving-plane co-simulation (``repro serve``).

    ``report`` is a :class:`~repro.serving.fleet.ServingReport`. The
    series an online-training deployment would alert on: lookup tail
    latency, row-cache efficiency, version freshness, and the
    must-be-zero torn-lookup counter.
    """
    return [
        Metric(
            f"{PREFIX}_serving_servers",
            report.num_servers,
            help="Inference servers in the serving fleet.",
        ),
        Metric(
            f"{PREFIX}_serving_cache_rows",
            report.cache_rows,
            help="Per-server row-cache capacity (pins + LRU ring).",
        ),
        Metric(
            f"{PREFIX}_serving_lookups",
            report.requests,
            help="Lookup requests served.",
            type="counter",
        ),
        Metric(
            f"{PREFIX}_serving_rows_looked_up",
            report.rows_looked_up,
            help="Embedding rows served across all requests.",
            type="counter",
        ),
        Metric(
            f"{PREFIX}_serving_lookup_p50_s",
            report.lookup_p50_s,
            help="Median lookup latency (arrival to completion).",
        ),
        Metric(
            f"{PREFIX}_serving_lookup_p99_s",
            report.lookup_p99_s,
            help="99th-percentile lookup latency.",
        ),
        Metric(
            f"{PREFIX}_serving_cache_hits",
            report.cache_hits,
            help="Row lookups answered from the row cache.",
            type="counter",
        ),
        Metric(
            f"{PREFIX}_serving_cache_misses",
            report.cache_misses,
            help="Row lookups that read a checkpoint chunk.",
            type="counter",
        ),
        Metric(
            f"{PREFIX}_serving_cache_hit_rate",
            report.hit_rate,
            help="Row-cache hit fraction over the run.",
        ),
        Metric(
            f"{PREFIX}_serving_version_flips",
            report.version_flips,
            help="Atomic version flips across the fleet.",
            type="counter",
        ),
        Metric(
            f"{PREFIX}_serving_flip_stall_seconds_total",
            report.flip_stall_total_s,
            help="Time spent warming caches before flips could land.",
            type="counter",
        ),
        Metric(
            f"{PREFIX}_serving_version_lag_mean_s",
            report.version_lag_mean_s,
            help="Mean age of the served version at lookup completion.",
        ),
        Metric(
            f"{PREFIX}_serving_version_lag_max_s",
            report.version_lag_max_s,
            help="Worst served-version age observed.",
        ),
        Metric(
            f"{PREFIX}_serving_torn_lookups",
            report.torn_lookups,
            help="Requests whose values mixed versions (must be 0).",
            type="counter",
        ),
        Metric(
            f"{PREFIX}_serving_straddled_requests",
            report.straddled_requests,
            help="Requests that finished on a pre-flip version.",
            type="counter",
        ),
        Metric(
            f"{PREFIX}_serving_version_fallbacks",
            report.version_fallbacks,
            help="Corrupt-chunk fallbacks to an older version.",
            type="counter",
        ),
        Metric(
            f"{PREFIX}_serving_publishes",
            report.publishes,
            help="Checkpoints published to the serving fleet.",
            type="counter",
        ),
    ]
