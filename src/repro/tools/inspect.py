"""Checkpoint inspection and scrubbing over an object store.

Operational tooling a production checkpointing deployment needs:
listing a job's checkpoints with their lineage, verifying every stored
chunk's CRC framing (a *scrub*, catching bit rot before a restore
does), and summarising storage usage per checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.manifest import CheckpointManifest, checkpoint_prefix
from ..core.restore import CheckpointRestorer
from ..errors import SerializationError
from ..serialize.format import decode_frames
from ..storage.object_store import ObjectStore


@dataclass(frozen=True)
class CheckpointSummary:
    """One row of the inspection listing."""

    checkpoint_id: str
    kind: str
    base_id: str | None
    interval_index: int
    quantizer: str
    bit_width: int
    logical_bytes: int
    rows_stored: int
    valid_at_s: float


@dataclass
class ScrubReport:
    """Outcome of verifying a job's stored chunks."""

    objects_checked: int = 0
    bytes_checked: int = 0
    corrupt_keys: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.corrupt_keys


def list_jobs(store: ObjectStore) -> list[str]:
    """Job ids present in the store (first key path segment)."""
    jobs = {key.split("/", 1)[0] for key in store.list_keys() if "/" in key}
    return sorted(jobs)


def summarize_job(
    store: ObjectStore, job_id: str
) -> list[CheckpointSummary]:
    """Manifest summaries for one job, oldest first."""
    restorer = CheckpointRestorer.__new__(CheckpointRestorer)
    restorer.store = store
    restorer.clock = None  # type: ignore[assignment] - listing only
    manifests = CheckpointRestorer.list_manifests(restorer, job_id)
    return [
        CheckpointSummary(
            checkpoint_id=m.checkpoint_id,
            kind=m.kind,
            base_id=m.base_id,
            interval_index=m.interval_index,
            quantizer=m.quantizer,
            bit_width=m.bit_width,
            logical_bytes=m.logical_bytes,
            rows_stored=m.embedding_rows_stored,
            valid_at_s=m.valid_at_s,
        )
        for m in sorted(
            manifests.values(), key=lambda m: m.interval_index
        )
    ]


def scrub_checkpoint(
    store: ObjectStore, manifest: CheckpointManifest
) -> ScrubReport:
    """CRC-verify every chunk and the dense blob of one checkpoint."""
    report = ScrubReport()
    keys = [
        chunk.key
        for shard in manifest.shards
        for chunk in shard.chunks
    ]
    if manifest.dense_key:
        keys.append(manifest.dense_key)
    for key in keys:
        blob = store.backend.read(key)
        report.objects_checked += 1
        report.bytes_checked += len(blob)
        try:
            decode_frames(blob)
        except SerializationError:
            report.corrupt_keys.append(key)
    return report


def scrub_job(store: ObjectStore, job_id: str) -> ScrubReport:
    """Scrub every checkpoint of a job; aggregates one report."""
    prefix_seen: set[str] = set()
    total = ScrubReport()
    restorer = CheckpointRestorer.__new__(CheckpointRestorer)
    restorer.store = store
    restorer.clock = None  # type: ignore[assignment]
    for manifest in CheckpointRestorer.list_manifests(
        restorer, job_id
    ).values():
        prefix_seen.add(checkpoint_prefix(job_id, manifest.checkpoint_id))
        partial = scrub_checkpoint(store, manifest)
        total.objects_checked += partial.objects_checked
        total.bytes_checked += partial.bytes_checked
        total.corrupt_keys.extend(partial.corrupt_keys)
    return total


def format_summaries(summaries: list[CheckpointSummary]) -> str:
    """Human-readable listing of checkpoint summaries."""
    if not summaries:
        return "(no checkpoints)"
    header = (
        f"{'checkpoint':14s} {'kind':12s} {'base':14s} {'ivl':>4s} "
        f"{'quant':10s} {'bits':>4s} {'KiB':>9s} {'rows':>9s}"
    )
    lines = [header, "-" * len(header)]
    for s in summaries:
        lines.append(
            f"{s.checkpoint_id:14s} {s.kind:12s} "
            f"{s.base_id or '-':14s} {s.interval_index:4d} "
            f"{s.quantizer:10s} {s.bit_width:4d} "
            f"{s.logical_bytes / 1024:9.1f} {s.rows_stored:9d}"
        )
    return "\n".join(lines)
