"""Operational tooling: CLI, checkpoint inspection, scrubbing."""

from .inspect import (
    CheckpointSummary,
    ScrubReport,
    format_summaries,
    list_jobs,
    scrub_checkpoint,
    scrub_job,
    summarize_job,
)

__all__ = [
    "CheckpointSummary",
    "ScrubReport",
    "format_summaries",
    "list_jobs",
    "scrub_checkpoint",
    "scrub_job",
    "summarize_job",
]
