"""Operational tooling: CLI, checkpoint inspection, scrubbing, docs.

The ``repro`` CLI (:mod:`.cli`) runs jobs and fleets and inspects
stores; :mod:`.docscheck` is the markdown link checker CI runs over
``README.md`` and ``docs/*.md``.
"""

from .inspect import (
    CheckpointSummary,
    ScrubReport,
    format_summaries,
    list_jobs,
    scrub_checkpoint,
    scrub_job,
    summarize_job,
)

__all__ = [
    "CheckpointSummary",
    "ScrubReport",
    "format_summaries",
    "list_jobs",
    "scrub_checkpoint",
    "scrub_job",
    "summarize_job",
]
