"""Command-line interface: run jobs, fleets; inspect and scrub checkpoints.

Usage (after ``pip install -e .``)::

    python -m repro.tools run --store-dir /tmp/ckpts --intervals 4
    python -m repro.tools inspect --store-dir /tmp/ckpts --job job0
    python -m repro.tools scrub --store-dir /tmp/ckpts --job job0
    python -m repro.tools scan --store-dir /tmp/ckpts --job job0
    python -m repro.tools restore --store-dir /tmp/ckpts --job job0
    python -m repro.tools fleet --jobs 8 --intervals 4
    python -m repro.tools plan --jobs 8 --quotas none,262144
    python -m repro.tools serve --servers 3 --cache-rows 256

``run`` persists checkpoints (and the job's configuration) to a
directory-backed object store, so a later ``restore`` in a *different
process* rebuilds the model and resumes — the same crash-restart flow
the in-memory examples demonstrate, but across real process boundaries.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..config import (
    BACKEND_KINDS,
    STORM_DOMAINS,
    BackendConfig,
    CheckpointConfig,
    FleetConfig,
    StorageConfig,
    experiment_config_from_dict,
    experiment_config_to_dict,
)
from ..core.controller import CheckNRun
from ..core.integrity import format_integrity_report, scan_job
from ..core.restore import CheckpointRestorer
from ..data.reader import ReaderMaster
from ..data.synthetic import SyntheticClickDataset
from ..distributed.clock import SimClock
from ..distributed.sharding import plan_auto
from ..distributed.topology import SimCluster
from ..distributed.trainer import SimTrainer
from ..errors import ReproError
from ..experiments.common import small_config
from ..model.dlrm import DLRM
from ..storage.object_store import ObjectStore
from .inspect import format_summaries, scrub_job, summarize_job
from .metrics import fleet_metrics, scan_metrics, write_textfile

JOB_CONFIG_KEY = "{job}/job_config.json"


def _open_store(store_dir: str, clock: SimClock) -> ObjectStore:
    config = StorageConfig(
        backend=BackendConfig(kind="file", root=store_dir)
    )
    return ObjectStore(config, clock)


def _build_from_stored_config(store: ObjectStore, job: str, clock):
    key = JOB_CONFIG_KEY.format(job=job)
    if not store.exists(key):
        raise ReproError(
            f"no stored configuration for job {job!r}; was it created "
            "with `repro run`?"
        )
    config = experiment_config_from_dict(
        json.loads(store.backend.read(key))
    )
    dataset = SyntheticClickDataset(config.model, config.data)
    model = DLRM(config.model)
    reader = ReaderMaster(dataset, config.reader)
    cluster = SimCluster(config.cluster)
    plan = plan_auto(config.model, cluster)
    trainer = SimTrainer(model, reader, cluster, plan, clock)
    controller = CheckNRun(
        trainer, reader, store, config.checkpoint, clock, job_id=job
    )
    return config, controller


def cmd_run(args: argparse.Namespace) -> int:
    config = small_config(
        policy=args.policy,
        quantizer=args.quantizer,
        bit_width=args.bits,
        interval_batches=args.interval_batches,
        num_tables=args.tables,
        rows_per_table=args.rows,
    )
    clock = SimClock()
    store = _open_store(args.store_dir, clock)
    store.put(
        JOB_CONFIG_KEY.format(job=args.job),
        json.dumps(experiment_config_to_dict(config)).encode("utf-8"),
        overwrite=True,
    )
    dataset = SyntheticClickDataset(config.model, config.data)
    model = DLRM(config.model)
    reader = ReaderMaster(dataset, config.reader)
    cluster = SimCluster(config.cluster)
    plan = plan_auto(config.model, cluster)
    trainer = SimTrainer(model, reader, cluster, plan, clock)
    controller = CheckNRun(
        trainer, reader, store, config.checkpoint, clock, job_id=args.job
    )

    # Resume if the job already has checkpoints on disk. The fresh
    # process's clock starts at zero, before the stored checkpoints'
    # validity times: fast-forward past the newest one.
    restorer = CheckpointRestorer(store, clock)
    existing = restorer.list_manifests(args.job)
    if existing:
        newest_valid = max(m.valid_at_s for m in existing.values())
        clock.advance_to(newest_valid + 1.0, "prior-history")
        controller.adopt_manifests(existing)
        report = controller.restore_latest()
        print(
            f"resumed {report.checkpoint_id} at batch "
            f"{model.batches_trained}"
        )
    for report in controller.run_intervals(args.intervals):
        print(
            f"interval done: loss={report.mean_loss:.4f} "
            f"({report.batches} batches)"
        )
    print(
        f"wrote {controller.stats.checkpoints_written} checkpoints, "
        f"{controller.stats.bytes_written_logical / 1024:.0f} KiB logical"
    )
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    store = _open_store(args.store_dir, SimClock())
    print(format_summaries(summarize_job(store, args.job)))
    return 0


def cmd_scrub(args: argparse.Namespace) -> int:
    store = _open_store(args.store_dir, SimClock())
    report = scrub_job(store, args.job)
    print(
        f"checked {report.objects_checked} objects, "
        f"{report.bytes_checked / 1024:.0f} KiB"
    )
    if report.clean:
        print("all chunks verified clean")
        return 0
    for key in report.corrupt_keys:
        print(f"CORRUPT: {key}")
    return 1


def cmd_scan(args: argparse.Namespace) -> int:
    """End-to-end integrity scan: digests, truncation, torn writes.

    Unlike ``scrub`` (chunk CRCs only), ``scan`` verifies every stored
    object against the manifest's sha256 digests and expected sizes,
    detects torn checkpoints (objects without a manifest), and
    quarantines corrupt checkpoints so restore planning skips them.
    """
    store = _open_store(args.store_dir, SimClock())
    report = scan_job(
        store, args.job, quarantine=not args.no_quarantine
    )
    print(format_integrity_report(report))
    if args.metrics_out is not None:
        path = write_textfile(args.metrics_out, scan_metrics(report))
        print(f"wrote {path}")
    return 0 if report.clean else 1


def cmd_restore(args: argparse.Namespace) -> int:
    clock = SimClock()
    store = _open_store(args.store_dir, clock)
    config, controller = _build_from_stored_config(
        store, args.job, clock
    )
    restorer = CheckpointRestorer(store, clock)
    existing = restorer.list_manifests(args.job)
    if existing:
        clock.advance_to(
            max(m.valid_at_s for m in existing.values()) + 1.0,
            "prior-history",
        )
    controller.adopt_manifests(existing)
    report = controller.restore_latest()
    print(
        f"restored {report.checkpoint_id} "
        f"(chain {' -> '.join(report.chain_ids)}): "
        f"{report.rows_restored} rows, "
        f"{report.bytes_read / 1024:.0f} KiB, model at batch "
        f"{controller.trainer.model.batches_trained}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Check-N-Run reproduction tooling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="train a job with checkpoints")
    run.add_argument(
        "--store-dir", required=True,
        help="directory for the file-backed object store",
    )
    run.add_argument("--job", default="job0", help="job id (namespace)")
    run.add_argument(
        "--policy", default="intermittent",
        help="checkpoint policy: full, one_shot, consecutive, "
        "intermittent",
    )
    run.add_argument(
        "--quantizer", default="adaptive",
        help="quantizer: none, float16, symmetric, asymmetric, "
        "adaptive, kmeans",
    )
    run.add_argument(
        "--bits", type=int, default=4, help="quantization bit width"
    )
    run.add_argument(
        "--intervals", type=int, default=3,
        help="checkpoint intervals to train",
    )
    run.add_argument(
        "--interval-batches", type=int, default=20,
        help="training batches per checkpoint interval",
    )
    run.add_argument(
        "--tables", type=int, default=4, help="embedding tables"
    )
    run.add_argument(
        "--rows", type=int, default=4096, help="rows per embedding table"
    )
    run.set_defaults(func=cmd_run)

    inspect_cmd = sub.add_parser(
        "inspect", help="list a job's checkpoints"
    )
    inspect_cmd.add_argument(
        "--store-dir", required=True,
        help="directory of the file-backed object store",
    )
    inspect_cmd.add_argument(
        "--job", default="job0", help="job id to inspect"
    )
    inspect_cmd.set_defaults(func=cmd_inspect)

    scrub = sub.add_parser("scrub", help="verify stored chunk CRCs")
    scrub.add_argument(
        "--store-dir", required=True,
        help="directory of the file-backed object store",
    )
    scrub.add_argument("--job", default="job0", help="job id to scrub")
    scrub.set_defaults(func=cmd_scrub)

    scan = sub.add_parser(
        "scan",
        help="verify digests end-to-end; quarantine corrupt checkpoints",
    )
    scan.add_argument(
        "--store-dir", required=True,
        help="directory of the file-backed object store",
    )
    scan.add_argument("--job", default="job0", help="job id to scan")
    scan.add_argument(
        "--no-quarantine", action="store_true",
        help="report corruption but leave manifests unmodified",
    )
    scan.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write scan counters as a Prometheus textfile (.prom)",
    )
    scan.set_defaults(func=cmd_scan)

    restore = sub.add_parser(
        "restore", help="restore a job's newest checkpoint"
    )
    restore.add_argument(
        "--store-dir", required=True,
        help="directory of the file-backed object store",
    )
    restore.add_argument(
        "--job", default="job0", help="job id to restore"
    )
    restore.set_defaults(func=cmd_restore)

    figures = sub.add_parser(
        "figures", help="print the quick paper-figure reproductions"
    )
    figures.set_defaults(func=cmd_figures)

    fleet = sub.add_parser(
        "fleet",
        help="run N jobs against one shared store; emit fleet aggregates",
    )
    fleet.add_argument("--jobs", type=int, default=8)
    fleet.add_argument("--intervals", type=int, default=6)
    fleet.add_argument("--seed", type=int, default=0xF1EE7)
    fleet.add_argument(
        "--max-concurrent-writes", type=int, default=None,
        help="deprecated: fixed cap on simultaneous checkpoint writes "
        "(maps to --admission static); prefer --admission dynamic",
    )
    fleet.add_argument(
        "--admission", choices=["none", "static", "dynamic"],
        default=None,
        help="admission-control mode for checkpoint triggers: 'static' "
        "caps concurrent writes (needs --max-concurrent-writes), "
        "'dynamic' defers experimental triggers when the link's "
        "projected queue delay exceeds one checkpoint interval "
        "(prod always admitted)",
    )
    fleet.add_argument(
        "--admission-backlog-factor", type=float, default=1.0,
        help="dynamic admission threshold, in checkpoint intervals of "
        "projected backlog",
    )
    fleet.add_argument(
        "--restore-admission", choices=["none", "dynamic"],
        default="none",
        help="read-side admission for restores: 'dynamic' paces an "
        "experimental job's restore until the link's projected backlog "
        "(write parts + queued restore reads) drains to the threshold; "
        "prod restores always start at once",
    )
    fleet.add_argument(
        "--restore-backlog-factor", type=float, default=1.0,
        help="read-side pacing threshold, in checkpoint intervals of "
        "projected backlog",
    )
    fleet.add_argument(
        "--retention", choices=["chain_depth", "storm_aware"],
        default="chain_depth",
        help="retention flavour: 'storm_aware' bounds every job's "
        "restore chain at --storm-chain-limit by forcing baseline "
        "refreshes, so a correlated storm re-reads short chains "
        "(requires --storm)",
    )
    fleet.add_argument(
        "--storm-chain-limit", type=int, default=2,
        help="restore-chain length bound under --retention storm_aware",
    )
    fleet.add_argument(
        "--adaptive-chain", action="store_true",
        help="derive each job's storm chain limit from its expected "
        "storm read cost vs baseline-refresh write cost instead of "
        "the fixed --storm-chain-limit (requires --retention "
        "storm_aware)",
    )
    fleet.add_argument(
        "--restore-order", choices=["manifest", "hot_first"],
        default="manifest",
        help="row order for restore reads: 'hot_first' streams the "
        "hottest embedding rows first so training resumes before the "
        "full restore lands (improves time-to-first-batch in storm "
        "drains)",
    )
    fleet.add_argument(
        "--replicate-k", type=int, default=0, metavar="K",
        help="mirror each job's per-step delta into K peer jobs' "
        "bounded memory rings (a replication stream class below prod "
        "writes); the store only receives retention-boundary baseline "
        "flushes and recovery prefers the nearest live replica "
        "(same rack > cross rack > object store)",
    )
    fleet.add_argument(
        "--peer-ring-bytes", type=int, default=2 * 1024 * 1024,
        metavar="BYTES",
        help="per-replica delta-log capacity; older deltas fold into "
        "the ring's anchor when the log would overflow",
    )
    fleet.add_argument(
        "--baseline-flush-intervals", type=int, default=2,
        metavar="N",
        help="with --replicate-k, flush a full baseline to the store "
        "every Nth checkpoint interval (others are replicated only)",
    )
    fleet.add_argument(
        "--quota-bytes", type=int, default=None,
        help="per-job live physical-byte quota on the shared store",
    )
    fleet.add_argument(
        "--no-failures", action="store_true",
        help="disable failure injection in the heterogeneous run",
    )
    fleet.add_argument(
        "--priority-mix", type=float, default=0.0,
        help="fraction of jobs in the prod priority tier (0 disables "
        "tiering; prod streams get strict link priority)",
    )
    fleet.add_argument(
        "--storm", choices=list(STORM_DOMAINS), default=None,
        help="arm one correlated failure: a rack (--rack-size jobs) or "
        "the whole power domain dies at once mid-run",
    )
    fleet.add_argument(
        "--rack-size", type=int, default=4,
        help="jobs per rack when assigning rack failure domains",
    )
    fleet.add_argument(
        "--preempt-wait", type=float, default=0.1,
        help="link backlog (seconds) a prod transfer tolerates before "
        "preempting experimental staged writes",
    )
    fleet.add_argument(
        "--no-preempt", action="store_true",
        help="disable prod preemption of experimental staged writes",
    )
    fleet.add_argument(
        "--backend", choices=list(BACKEND_KINDS), default="memory",
        help="shared-store byte backend; 's3like' models per-op-class "
        "request latencies, multipart upload and ranged GETs",
    )
    fleet.add_argument(
        "--part-size", type=int, default=None, metavar="BYTES",
        help="multipart part size for --backend s3like (objects above "
        "this upload as parallel parts; default: single-shot PUTs)",
    )
    fleet.add_argument(
        "--part-fanout", type=int, default=4,
        help="parallel upload lanes for multipart parts / ranged GETs",
    )
    fleet.add_argument(
        "--put-latency", type=float, default=0.030, metavar="SECONDS",
        help="s3like per-request PUT latency",
    )
    fleet.add_argument(
        "--get-latency", type=float, default=0.020, metavar="SECONDS",
        help="s3like per-request GET latency",
    )
    fleet.add_argument(
        "--range-get", type=int, default=None, metavar="BYTES",
        help="split s3like GETs above this size into ranged sub-GETs",
    )
    fleet.add_argument(
        "--failure-prob", type=float, default=0.0, metavar="P",
        help="s3like transient-failure injection: each PUT/GET request "
        "fails with this probability and is retried by the transfer "
        "engine (deterministic under the seed)",
    )
    fleet.add_argument(
        "--write-bandwidth", type=float, default=None, metavar="B/S",
        help="shared-link write bandwidth in bytes/sec (default 1 GiB/s)",
    )
    fleet.add_argument(
        "--read-bandwidth", type=float, default=None, metavar="B/S",
        help="shared-link read bandwidth in bytes/sec (default 2 GiB/s)",
    )
    fleet.add_argument(
        "--cache-tier", action="store_true",
        help="layer an NVMe-class near tier (a write-back/write-through "
        "cache) over the shared backend; restores hit the near tier on "
        "a cache hit and spill to the far tier on a miss",
    )
    fleet.add_argument(
        "--cache-bytes", type=int, default=1024 * 1024, metavar="BYTES",
        help="near-tier capacity when --cache-tier is set",
    )
    fleet.add_argument(
        "--cache-policy", choices=["write_back", "write_through"],
        default="write_back",
        help="cache write policy: write_back acks at near-tier cost and "
        "flushes dirty objects asynchronously; write_through writes the "
        "far tier synchronously",
    )
    fleet.add_argument(
        "--bitrot-prob", type=float, default=0.0, metavar="P",
        help="silent-corruption injection: each stored PUT payload is "
        "bit-flipped with this probability (deterministic under "
        "--bitrot-seed); restores detect the damage via digests and "
        "fall back to older checkpoints",
    )
    fleet.add_argument(
        "--bitrot-seed", type=int, default=0xB17F,
        help="seed for the bit-rot injector's RNG",
    )
    fleet.add_argument(
        "--dispatch", choices=["heap", "lockstep"], default="heap",
        help="event-dispatch engine: 'heap' (indexed event heap, "
        "O(log n) per event) or 'lockstep' (the original O(n) "
        "min-scan baseline); runs are bit-identical either way",
    )
    fleet.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write fleet counters as a Prometheus textfile (.prom)",
    )
    fleet.add_argument(
        "--out", default="benchmarks/results",
        help="directory for fleet_aggregate.txt",
    )
    fleet.set_defaults(func=cmd_fleet)

    plan = sub.add_parser(
        "plan",
        help="capacity planner: sweep quota x retention x admission "
        "over one seeded fleet; emit the Fig-16 provisioning curve",
    )
    plan.add_argument("--jobs", type=int, default=8)
    plan.add_argument("--intervals", type=int, default=4)
    plan.add_argument("--seed", type=int, default=0xF1EE7)
    plan.add_argument(
        "--quotas", default="none",
        help="comma-separated per-job quota sweep in bytes; 'none' "
        "means unlimited (e.g. none,262144,524288)",
    )
    plan.add_argument(
        "--keep-last", default="1,2,3", dest="keep_last",
        help="comma-separated retention-depth sweep (checkpoints "
        "kept per job)",
    )
    plan.add_argument(
        "--admissions", default="none,dynamic",
        help="comma-separated admission-mode sweep: none, static "
        "(needs --max-concurrent-writes), dynamic",
    )
    plan.add_argument(
        "--max-concurrent-writes", type=int, default=None,
        help="concurrent-write cap used by the 'static' admission "
        "mode when it appears in --admissions",
    )
    plan.add_argument(
        "--storm", choices=list(STORM_DOMAINS), default=None,
        help="arm a correlated failure so every point also reports "
        "the fleet's storm time-to-recover",
    )
    plan.add_argument(
        "--rack-size", type=int, default=4,
        help="jobs per rack when assigning storm failure domains",
    )
    plan.add_argument(
        "--priority-mix", type=float, default=0.0,
        help="fraction of jobs in the prod priority tier",
    )
    plan.add_argument(
        "--no-failures", action="store_true",
        help="disable independent failure injection",
    )
    plan.add_argument(
        "--dispatch", choices=["heap", "lockstep"], default="heap",
        help="event-dispatch engine for the sweep's fleet runs",
    )
    plan.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the curve as a Prometheus textfile (.prom)",
    )
    plan.add_argument(
        "--out", default="benchmarks/results",
        help="directory for plan_provisioning_curve.txt",
    )
    plan.set_defaults(func=cmd_plan)

    serve = sub.add_parser(
        "serve",
        help="co-simulate the serving plane: checkpoints publish to "
        "inference servers answering row lookups",
    )
    serve.add_argument(
        "--servers", type=int, default=3, help="inference servers"
    )
    serve.add_argument(
        "--cache-rows", type=int, default=256,
        help="per-server row-cache capacity (pinned hot rows + LRU)",
    )
    serve.add_argument(
        "--qps", type=float, default=16.0,
        help="fleet-wide lookup arrival rate",
    )
    serve.add_argument(
        "--queries", type=int, default=300, help="lookup requests"
    )
    serve.add_argument(
        "--intervals", type=int, default=6,
        help="checkpoint intervals the training job runs underneath",
    )
    serve.add_argument(
        "--interval-batches", type=int, default=25,
        help="training batches per checkpoint interval",
    )
    serve.add_argument(
        "--tables", type=int, default=2, help="embedding tables"
    )
    serve.add_argument(
        "--rows", type=int, default=2048,
        help="rows per embedding table",
    )
    serve.add_argument(
        "--chunk-rows", type=int, default=256,
        help="embedding rows per checkpoint chunk (the ranged-GET unit "
        "serving misses read)",
    )
    serve.add_argument(
        "--pin-rows", type=int, default=48,
        help="hot rows the publisher announces (and servers pin) per "
        "table",
    )
    serve.add_argument(
        "--no-warm-pins", action="store_true",
        help="disable hot-row prefetch at version flips",
    )
    serve.add_argument(
        "--no-verify", action="store_true",
        help="skip the golden-snapshot torn-lookup verifier",
    )
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument(
        "--out", default="benchmarks/results",
        help="directory for serving_cli_report.txt",
    )
    serve.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write serving counters as a Prometheus textfile (.prom)",
    )
    serve.set_defaults(func=cmd_serve)
    return parser


def cmd_figures(args: argparse.Namespace) -> int:
    from .figures import render_all

    print(render_all())
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Run a heterogeneous fleet + the Fig 17 fleet-aggregate comparison.

    With ``--priority-mix``/``--storm`` the run also produces the
    fleet-storm table: restore-latency distribution, contention
    degradation, preemption counts and goodput per priority tier,
    written to ``fleet_cli_storm.txt`` next to the aggregate artifact.
    """
    from pathlib import Path

    from ..fleet import (
        fleet_reduction_experiment,
        format_fleet_report,
        format_storm_report,
        run_fleet,
    )

    if args.max_concurrent_writes is not None and args.admission is None:
        print(
            "warning: --max-concurrent-writes is deprecated; it now "
            "maps to the transfer engine's static admission mode "
            "(--admission static). Consider --admission dynamic.",
            file=sys.stderr,
        )
    if args.failure_prob > 0.0 and args.backend != "s3like":
        print(
            "warning: --failure-prob only injects on --backend s3like; "
            "ignoring it",
            file=sys.stderr,
        )
    storage_kwargs: dict = {}
    if args.write_bandwidth is not None:
        storage_kwargs["write_bandwidth"] = args.write_bandwidth
    if args.read_bandwidth is not None:
        storage_kwargs["read_bandwidth"] = args.read_bandwidth
    storage = StorageConfig(
        backend=BackendConfig(
            kind=args.backend,
            part_size_bytes=args.part_size,
            multipart_fanout=args.part_fanout,
            put_latency_s=args.put_latency,
            get_latency_s=args.get_latency,
            range_get_bytes=args.range_get,
            put_failure_prob=args.failure_prob,
            get_failure_prob=args.failure_prob,
            cache_bytes=args.cache_bytes if args.cache_tier else 0,
            cache_policy=args.cache_policy,
        ),
        **storage_kwargs,
    )
    config = FleetConfig(
        num_jobs=args.jobs,
        intervals_per_job=args.intervals,
        seed=args.seed,
        max_concurrent_writes=args.max_concurrent_writes,
        admission_mode=args.admission,
        admission_backlog_factor=args.admission_backlog_factor,
        restore_admission=args.restore_admission,
        restore_backlog_factor=args.restore_backlog_factor,
        retention_mode=args.retention,
        storm_chain_limit=args.storm_chain_limit,
        storm_chain_adaptive=args.adaptive_chain,
        restore_order=args.restore_order,
        replicate_k=args.replicate_k,
        peer_ring_bytes=args.peer_ring_bytes,
        baseline_flush_intervals=args.baseline_flush_intervals,
        per_job_quota_bytes=args.quota_bytes,
        inject_failures=not args.no_failures,
        priority_mix=args.priority_mix,
        storm_domain=args.storm,
        rack_size=args.rack_size,
        preempt_wait_s=args.preempt_wait,
        preempt_staged_writes=not args.no_preempt,
        bitrot_prob=args.bitrot_prob,
        bitrot_seed=args.bitrot_seed,
        storage=storage,
    )
    _, report = run_fleet(config, dispatch=args.dispatch)
    reduction = fleet_reduction_experiment(config)
    # The aggregate header names every knob that shaped the run, so
    # the artifact stays reproducible from its own first line.
    variant = ""
    if args.priority_mix > 0.0:
        variant += f", priority mix {args.priority_mix:.2f}"
    if args.storm is not None:
        variant += f", storm {args.storm}"
    if args.backend != "memory":
        variant += f", backend {args.backend}"
        if args.part_size is not None:
            variant += f" (part {args.part_size} B x{args.part_fanout})"
    if config.resolved_admission_mode != "none":
        variant += f", admission {config.resolved_admission_mode}"
    if args.restore_admission != "none":
        variant += f", restore admission {args.restore_admission}"
    if args.retention != "chain_depth":
        if args.adaptive_chain:
            variant += f", retention {args.retention} (adaptive chain)"
        else:
            variant += (
                f", retention {args.retention}"
                f" (chain <= {args.storm_chain_limit})"
            )
    if args.restore_order != "manifest":
        variant += f", restore order {args.restore_order}"
    if args.replicate_k > 0:
        variant += (
            f", replicate k={args.replicate_k} "
            f"(ring {args.peer_ring_bytes} B, baseline every "
            f"{args.baseline_flush_intervals})"
        )
    if args.failure_prob > 0.0 and args.backend == "s3like":
        variant += f", failure prob {args.failure_prob:g}"
    if args.cache_tier:
        variant += (
            f", cache {args.cache_policy} ({args.cache_bytes} B)"
        )
    if args.bitrot_prob > 0.0:
        variant += f", bit rot {args.bitrot_prob:g}"
    body = "\n".join(
        [
            f"== Fleet run: {args.jobs} jobs x {args.intervals} "
            f"intervals (seed {args.seed}{variant}) ==",
            format_fleet_report(report),
            "",
            reduction.format(),
            "",
        ]
    )
    print(body)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / "fleet_cli_aggregate.txt"
    out_path.write_text(body)
    print(f"wrote {out_path}")
    if args.metrics_out is not None:
        metrics_path = write_textfile(
            args.metrics_out, fleet_metrics(report)
        )
        print(f"wrote {metrics_path}")

    if args.priority_mix > 0.0 or args.storm is not None:
        storm_body = "\n".join(
            [
                f"== Fleet storm run: {args.jobs} jobs, priority mix "
                f"{args.priority_mix:.2f}, storm "
                f"{args.storm or 'none'} (seed {args.seed}) ==",
                format_storm_report(report),
                "",
            ]
        )
        print(storm_body)
        storm_path = out_dir / "fleet_cli_storm.txt"
        storm_path.write_text(storm_body)
        print(f"wrote {storm_path}")
    return 0


def _parse_sweep(raw: str, name: str) -> list:
    """Parse a comma-separated sweep axis; 'none' maps to None."""
    values: list = []
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        if token == "none":
            values.append(None)
        else:
            try:
                values.append(int(token))
            except ValueError:
                raise ReproError(
                    f"bad {name} value {token!r}: expected an "
                    "integer or 'none'"
                ) from None
    if not values:
        raise ReproError(f"empty {name} sweep")
    return values


def cmd_plan(args: argparse.Namespace) -> int:
    """Sweep provisioning knobs and emit the Fig-16 capacity curve.

    Each grid point re-runs the *same seeded fleet* with one
    (quota, retention depth, admission mode) combination, and the
    table reports the peak storage / peak link bandwidth / storm
    time-to-recover that setting would need — the numbers an operator
    provisions the checkpoint store from.
    """
    from pathlib import Path

    from ..fleet import run_plan
    from .metrics import plan_metrics

    quotas = _parse_sweep(args.quotas, "--quotas")
    keep_lasts = [
        k for k in _parse_sweep(args.keep_last, "--keep-last")
        if k is not None
    ]
    admissions = [
        token.strip()
        for token in args.admissions.split(",")
        if token.strip()
    ]
    base = FleetConfig(
        num_jobs=args.jobs,
        intervals_per_job=args.intervals,
        seed=args.seed,
        max_concurrent_writes=args.max_concurrent_writes,
        inject_failures=not args.no_failures,
        priority_mix=args.priority_mix,
        storm_domain=args.storm,
        rack_size=args.rack_size,
    )
    points = len(quotas) * len(keep_lasts) * len(admissions)
    print(
        f"sweeping {points} points ({len(quotas)} quotas x "
        f"{len(keep_lasts)} retention depths x {len(admissions)} "
        f"admission modes), {args.jobs} jobs each..."
    )
    curve = run_plan(
        base,
        quotas=quotas,
        keep_lasts=keep_lasts,
        admissions=admissions,
        dispatch=args.dispatch,
    )
    body = curve.format() + "\n"
    print(body)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / "plan_provisioning_curve.txt"
    out_path.write_text(body)
    print(f"wrote {out_path}")
    if args.metrics_out is not None:
        metrics_path = write_textfile(
            args.metrics_out, plan_metrics(curve)
        )
        print(f"wrote {metrics_path}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the checkpoint-to-inference serving-plane co-simulation.

    One training job checkpoints under Check-N-Run while the serving
    fleet answers Zipfian row lookups against the latest published
    version — writes, publish reads and lookup GETs share one link.
    The report (lookup percentiles, cache hit rate, version flips and
    the must-be-zero torn-lookup count) lands in
    ``serving_cli_report.txt``.
    """
    import dataclasses
    from pathlib import Path

    from ..serving import ServingConfig, format_serving_report, run_serving
    from .metrics import serving_metrics

    config = small_config(
        policy="consecutive",
        interval_batches=args.interval_batches,
        num_tables=args.tables,
        rows_per_table=args.rows,
        batch_size=64,
    )
    config = dataclasses.replace(
        config,
        checkpoint=dataclasses.replace(
            config.checkpoint, chunk_rows=args.chunk_rows
        ),
    )
    serving = ServingConfig(
        num_servers=args.servers,
        cache_rows=args.cache_rows,
        qps=args.qps,
        num_queries=args.queries,
        hot_rows_per_table=args.pin_rows,
        warm_pins=not args.no_warm_pins,
        verify=not args.no_verify,
        seed=args.seed,
        train_intervals=args.intervals,
    )
    report = run_serving(config, serving)
    body = "\n".join(
        [
            f"== Serving run: {args.servers} servers x "
            f"{args.cache_rows} cache rows, {args.qps:g} qps over "
            f"{args.queries} queries (seed {args.seed}) ==",
            format_serving_report(report),
        ]
    )
    print(body)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / "serving_cli_report.txt"
    out_path.write_text(body)
    print(f"wrote {out_path}")
    if args.metrics_out is not None:
        metrics_path = write_textfile(
            args.metrics_out, serving_metrics(report)
        )
        print(f"wrote {metrics_path}")
    return 1 if report.torn_lookups else 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
