"""Quick figure reproduction without the pytest harness.

The benchmark suite under ``benchmarks/`` is the full reproduction; this
module renders the fast subset of figures as plain-text tables for users
who want a one-command look at the paper's shapes:

    python -m repro.tools figures

Each renderer returns the formatted text so the CLI and the example
script share one implementation.
"""

from __future__ import annotations

from ..experiments import (
    interval_modified_experiment,
    modified_fraction_experiment,
    snapshot_stall_at_scale,
)
from ..experiments.incremental import incremental_policy_experiment
from ..failures import HOUR_S, FailureTrace, paper_failure_model
from ..config import GiB


def render_fig3(num_jobs: int = 20_000) -> str:
    trace = FailureTrace.generate(
        paper_failure_model(), num_jobs, seed=303
    )
    lines = ["Fig 3 - failure CDF (paper: P90>=13.5h, P99>=53.9h)"]
    for point in trace.cdf(8):
        lines.append(
            f"  {point.fraction:5.0%} of failed jobs ran "
            f"<= {point.time_hours:6.1f} h"
        )
    lines.append(
        f"  measured P90={trace.quantile(0.9) / HOUR_S:.1f}h "
        f"P99={trace.quantile(0.99) / HOUR_S:.1f}h"
    )
    return "\n".join(lines)


def render_fig5() -> str:
    curves = modified_fraction_experiment(
        rows=100_000, lookups_per_step=10_000, total_steps=30,
        starts=(0, 10, 20),
    )
    lines = ["Fig 5 - % of model modified vs samples (3 starts)"]
    for curve in curves:
        shown = ", ".join(
            f"{f:.2f}" for f in curve.fractions[:10]
        )
        lines.append(f"  start {curve.start_step:2d}: {shown} ...")
    return "\n".join(lines)


def render_fig6() -> str:
    results = interval_modified_experiment(
        rows=100_000, lookups_per_minute=2_000, total_minutes=120,
        interval_minutes=(10, 30, 60),
    )
    lines = ["Fig 6 - % modified per interval length"]
    for result in results:
        lines.append(
            f"  {result.interval_steps:3d} min: "
            f"{result.mean_fraction:.3f} mean "
            f"({min(result.fractions):.3f}..{max(result.fractions):.3f})"
        )
    return "\n".join(lines)


def render_fig15_16(num_intervals: int = 8) -> str:
    runs = incremental_policy_experiment(
        num_intervals=num_intervals,
        interval_batches=15,
        rows_per_table=8192,
        num_tables=4,
    )
    lines = [
        "Figs 15/16 - per-interval checkpoint size and required "
        "capacity (x model)"
    ]
    header = "  interval " + " ".join(
        f"{r.policy:>22s}" for r in runs
    )
    lines.append(header)
    for i in range(num_intervals):
        cells = " ".join(
            f"size {r.size_fractions[i]:4.2f} cap "
            f"{r.capacity_fractions[i]:4.2f}"
            for r in runs
        )
        lines.append(f"  {i:8d} {cells}")
    return "\n".join(lines)


def render_stall_table() -> str:
    lines = [
        "Section 6.1 - snapshot stall (paper: <7s, <0.4% of interval)"
    ]
    for size_gib in (256, 1024, 2048):
        row = snapshot_stall_at_scale(size_gib * GiB)
        lines.append(
            f"  {size_gib:5d} GiB model: {row.stall_s:5.2f}s stall, "
            f"{row.overhead_fraction:6.3%} of a 30-min interval"
        )
    return "\n".join(lines)


def render_all() -> str:
    """All quick figures as one report."""
    sections = [
        render_fig3(),
        render_fig5(),
        render_fig6(),
        render_fig15_16(),
        render_stall_table(),
    ]
    return "\n\n".join(sections)
