"""Markdown link checker for the repo's documentation surface.

CI runs this over ``README.md`` and ``docs/*.md`` so the documented
entry points cannot rot: every relative link must resolve to a file (or
directory) inside the repository, and every intra-document anchor link
must at least point at a markdown file that exists. External
``http(s)``/``mailto`` links are skipped — CI must not depend on the
network.

Usage::

    python -m repro.tools.docscheck [--root REPO_ROOT]

Exit status 0 when every link resolves, 1 otherwise (broken links are
listed on stderr).
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

#: Markdown inline links: [text](target). Images share the syntax.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Link schemes that are not checked (no network in CI).
_SKIPPED_PREFIXES = ("http://", "https://", "mailto:")


def iter_links(markdown: str) -> list[str]:
    """All inline link targets in a markdown document, in order."""
    return _LINK_RE.findall(markdown)


def check_file(path: Path, root: Path) -> list[str]:
    """Broken link targets of one markdown file.

    Relative targets resolve against the file's own directory and must
    stay inside ``root``; a pure ``#anchor`` refers to the file itself
    and is always fine.
    """
    broken = []
    for target in iter_links(path.read_text(encoding="utf-8")):
        if target.startswith(_SKIPPED_PREFIXES):
            continue
        if target.startswith("#"):
            continue  # intra-document anchor
        candidate = target.split("#", 1)[0]
        resolved = (path.parent / candidate).resolve()
        if not resolved.is_relative_to(root.resolve()):
            broken.append(f"{target} (escapes the repository)")
            continue
        if not resolved.exists():
            broken.append(target)
    return broken


def default_documents(root: Path) -> list[Path]:
    """The repo's documentation surface: README.md plus docs/*.md."""
    documents = []
    readme = root / "README.md"
    if readme.exists():
        documents.append(readme)
    docs_dir = root / "docs"
    if docs_dir.is_dir():
        documents.extend(sorted(docs_dir.glob("*.md")))
    return documents


def check_tree(root: Path) -> dict[str, list[str]]:
    """Broken links per document (relative path -> targets)."""
    report: dict[str, list[str]] = {}
    for document in default_documents(root):
        broken = check_file(document, root)
        if broken:
            report[str(document.relative_to(root))] = broken
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-docscheck",
        description="check README.md/docs/*.md links resolve",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root (default: current directory)",
    )
    args = parser.parse_args(argv)
    root = Path(args.root)
    documents = default_documents(root)
    if not documents:
        print(f"no documentation found under {root}", file=sys.stderr)
        return 1
    report = check_tree(root)
    for document, broken in sorted(report.items()):
        for target in broken:
            print(f"BROKEN LINK {document}: {target}", file=sys.stderr)
    if report:
        return 1
    total = sum(
        len(iter_links(d.read_text(encoding="utf-8")))
        for d in documents
    )
    print(
        f"checked {len(documents)} documents, {total} links: all resolve"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
