"""Markdown link + CLI-reference checker for the docs surface.

CI runs this over ``README.md`` and ``docs/*.md`` so the documented
entry points cannot rot: every relative link must resolve to a file (or
directory) inside the repository, and every intra-document anchor link
must at least point at a markdown file that exists. External
``http(s)``/``mailto`` links are skipped — CI must not depend on the
network.

It also guards ``docs/cli.md`` against drift
(:func:`check_cli_doc`): every option string of every ``repro``
subcommand (from :func:`repro.tools.cli.build_parser`) must appear in
the generated reference — adding a flag without re-running
``python -m repro.tools.clidoc --out docs/cli.md`` fails CI and
``tests/test_docs.py``.

Usage::

    python -m repro.tools.docscheck [--root REPO_ROOT]

Exit status 0 when every link resolves and the CLI reference is
complete, 1 otherwise (problems are listed on stderr).
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

#: Markdown inline links: [text](target). Images share the syntax.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Link schemes that are not checked (no network in CI).
_SKIPPED_PREFIXES = ("http://", "https://", "mailto:")


def iter_links(markdown: str) -> list[str]:
    """All inline link targets in a markdown document, in order."""
    return _LINK_RE.findall(markdown)


def check_file(path: Path, root: Path) -> list[str]:
    """Broken link targets of one markdown file.

    Relative targets resolve against the file's own directory and must
    stay inside ``root``; a pure ``#anchor`` refers to the file itself
    and is always fine.
    """
    broken = []
    for target in iter_links(path.read_text(encoding="utf-8")):
        if target.startswith(_SKIPPED_PREFIXES):
            continue
        if target.startswith("#"):
            continue  # intra-document anchor
        candidate = target.split("#", 1)[0]
        resolved = (path.parent / candidate).resolve()
        if not resolved.is_relative_to(root.resolve()):
            broken.append(f"{target} (escapes the repository)")
            continue
        if not resolved.exists():
            broken.append(target)
    return broken


def default_documents(root: Path) -> list[Path]:
    """The repo's documentation surface: README.md plus docs/*.md."""
    documents = []
    readme = root / "README.md"
    if readme.exists():
        documents.append(readme)
    docs_dir = root / "docs"
    if docs_dir.is_dir():
        documents.extend(sorted(docs_dir.glob("*.md")))
    return documents


def check_tree(root: Path) -> dict[str, list[str]]:
    """Broken links per document (relative path -> targets)."""
    report: dict[str, list[str]] = {}
    for document in default_documents(root):
        broken = check_file(document, root)
        if broken:
            report[str(document.relative_to(root))] = broken
    return report


#: Location of the generated CLI reference relative to the repo root.
CLI_DOC = Path("docs") / "cli.md"


def check_cli_doc(root: Path) -> list[str]:
    """Drift between the CLI parsers and the committed ``docs/cli.md``.

    Two guards, reported in order:

    * **missing flags** — each entry reads ``<subcommand>: <flag>``;
      flags are matched as whole words, so a documented
      ``--admission-backlog-factor`` does not hide a missing
      ``--admission``. These entries name exactly what a parser change
      added.
    * **staleness** — the document is fully generated, so anything
      short of byte-equality with the current
      :func:`repro.tools.clidoc.render_cli_doc` output (a removed or
      renamed flag, a changed default or help string) is drift too,
      reported as one ``stale`` entry.

    A missing reference file is reported as a single entry. Either way
    the fix is the same: regenerate with
    ``python -m repro.tools.clidoc --out docs/cli.md``.
    """
    from .cli import build_parser
    from .clidoc import all_flags, render_cli_doc

    doc_path = root / CLI_DOC
    if not doc_path.exists():
        return [f"missing {CLI_DOC} (run `python -m repro.tools.clidoc`)"]
    text = doc_path.read_text(encoding="utf-8")
    parser = build_parser()
    problems = []
    for command, flags in sorted(all_flags(parser).items()):
        for flag in sorted(flags):
            if not re.search(re.escape(flag) + r"(?![\w-])", text):
                problems.append(f"{command}: {flag}")
    if text != render_cli_doc(parser):
        problems.append(
            f"{CLI_DOC} is stale — regenerate with "
            "`python -m repro.tools.clidoc --out docs/cli.md`"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-docscheck",
        description="check README.md/docs/*.md links resolve",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root (default: current directory)",
    )
    args = parser.parse_args(argv)
    root = Path(args.root)
    documents = default_documents(root)
    if not documents:
        print(f"no documentation found under {root}", file=sys.stderr)
        return 1
    report = check_tree(root)
    for document, broken in sorted(report.items()):
        for target in broken:
            print(f"BROKEN LINK {document}: {target}", file=sys.stderr)
    undocumented = check_cli_doc(root)
    for entry in undocumented:
        print(f"UNDOCUMENTED CLI FLAG {entry}", file=sys.stderr)
    if report or undocumented:
        return 1
    total = sum(
        len(iter_links(d.read_text(encoding="utf-8")))
        for d in documents
    )
    print(
        f"checked {len(documents)} documents, {total} links: all "
        "resolve; CLI reference covers every parser flag"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
